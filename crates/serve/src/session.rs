//! Sessions and the per-connection protocol state machine.
//!
//! Everything here is socket-free: [`Conn::handle`] maps one decoded
//! request frame to its response frames against the [`Shared`] server
//! state, which is what makes admission control and the backpressure
//! path unit-testable without TCP. The server (`crate::server`) owns
//! the sockets and calls into this module; the load test and the
//! property tests call it directly.
//!
//! ## Session → batch-slot mapping
//!
//! A session is one streamed text: a [`DictionaryMatcher`] cloned from
//! the connection's compiled dictionary, plus accounting. Feeding text
//! into the superplane farm consumes *batch-slot bytes* — the farm's
//! finite capacity — so every `FEED` chunk takes a
//! [`SlotLease`](pm_chip::throughput::SlotLease) from the
//! [`SlotPool`] of the shard the session is pinned to
//! (`router.shard_for(session_id)`) for exactly the chunk's length
//! and releases it when the chunk has been matched. Exhaustion is answered with
//! `SERVER_BUSY` and a retry hint paced by the host
//! [`RetryPolicy`](pm_chip::host::RetryPolicy) — the same
//! stall/backoff discipline `ResilientHostBus` applies to sick
//! hardware, pointed the other way.

use crate::config::ServeConfig;
use crate::protocol::{BusyReason, ErrorCode, Frame, Match};
use pm_chip::dictionary::{DictionaryMatcher, PatternDictionary};
use pm_chip::shard::{Router, RouterConfig};
use pm_chip::telemetry::MetricsRegistry;
use pm_chip::throughput::SlotPool;
use pm_systolic::symbol::{Alphabet, Pattern, Symbol};
use pm_systolic::telemetry::{SinkHandle, TraceEvent};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// State every connection shares: the config, the metrics registry
/// (also the trace sink), the global session count and the byte-budget
/// pool.
#[derive(Debug)]
pub struct Shared {
    /// The server's configuration.
    pub config: ServeConfig,
    /// The sharded memory system sessions lease batch-slot bytes from.
    /// Each session is pinned to `router.shard_for(session_id)`, so a
    /// hot shard backpressures only the sessions it owns.
    pub router: Router,
    /// Shard 0's batch-slot pool (clones share state). With the
    /// default single-shard config this *is* the whole byte budget;
    /// kept as a field so callers can observe and pre-lease budget
    /// without picking a shard.
    pub pool: SlotPool,
    /// Sessions open across all connections.
    pub open_sessions: AtomicUsize,
    /// Session-id allocator (ids are unique server-wide).
    next_session: AtomicU64,
    /// The metrics registry METRICS frames snapshot.
    pub registry: Arc<MetricsRegistry>,
    /// Trace sink (wraps `registry`).
    pub sink: SinkHandle,
}

impl Shared {
    /// Fresh shared state for a server with this config.
    pub fn new(config: ServeConfig) -> Arc<Self> {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = SinkHandle::new(registry.clone());
        let router = Router::with_sink(
            RouterConfig {
                shards: config.shards.max(1),
                workers_per_shard: config.effective_workers(),
                budget_bytes: config.global_budget_bytes,
                width: config.width,
                ..RouterConfig::default()
            },
            sink.clone(),
        );
        let pool = router.shard(0).pool().clone();
        Arc::new(Shared {
            config,
            router,
            pool,
            open_sessions: AtomicUsize::new(0),
            next_session: AtomicU64::new(1),
            registry,
            sink,
        })
    }

    /// Tries to admit one session against the global cap.
    fn admit_session(&self) -> Option<u64> {
        let cap = self.config.max_sessions;
        let admitted = self
            .open_sessions
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < cap).then_some(n + 1)
            })
            .is_ok();
        admitted.then(|| self.next_session.fetch_add(1, Ordering::Relaxed))
    }

    fn release_sessions(&self, n: usize) {
        self.open_sessions.fetch_sub(n, Ordering::AcqRel);
    }
}

/// One streamed text: the matcher carrying chunk-boundary state, plus
/// accounting for the final `CLOSED` frame.
#[derive(Debug)]
struct Session {
    matcher: DictionaryMatcher,
    chars: u64,
    events: u64,
    /// Consecutive `SERVER_BUSY` answers; paces the retry hint.
    busy_attempts: u32,
}

/// Per-connection protocol state: declared patterns, the compiled
/// dictionary, and the sessions multiplexed over this connection.
#[derive(Debug)]
pub struct Conn {
    shared: Arc<Shared>,
    patterns: Vec<Pattern>,
    /// Compiled prototype; sessions clone it. `None` while dirty.
    proto: Option<DictionaryMatcher>,
    sessions: HashMap<u64, Session>,
    /// Set once the client says `BYE`; the server closes after
    /// flushing responses.
    done: bool,
}

impl Conn {
    /// A fresh connection against the shared server state.
    pub fn new(shared: Arc<Shared>) -> Self {
        Conn {
            shared,
            patterns: Vec::new(),
            proto: None,
            sessions: HashMap::new(),
            done: false,
        }
    }

    /// Whether the client has said `BYE`.
    pub fn finished(&self) -> bool {
        self.done
    }

    /// Sessions this connection currently owns.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Handles one request frame, appending response frames to `out`.
    /// Protocol violations produce `ERROR` frames rather than closing
    /// the connection; only a codec failure (lost framing) warrants a
    /// drop, and that is the server's call.
    pub fn handle(&mut self, frame: Frame, out: &mut Vec<Frame>) {
        let sink = self.shared.sink.clone();
        if sink.enabled() {
            let bytes = match &frame {
                Frame::Feed { bytes, .. } => bytes.len() as u64,
                Frame::AddPattern { bytes, .. } => bytes.len() as u64,
                _ => 0,
            };
            sink.record(TraceEvent::FrameReceived {
                kind: frame.kind(),
                bytes,
            });
        }
        match frame {
            Frame::Hello { version: _ } => out.push(Frame::HelloOk {
                version: crate::protocol::PROTOCOL_VERSION,
                max_frame: crate::protocol::MAX_FRAME,
            }),
            Frame::AddPattern { wild, bytes } => self.add_pattern(wild, &bytes, out),
            Frame::OpenSession => self.open_session(out),
            Frame::Feed { session, bytes } => self.feed(session, &bytes, out),
            Frame::Close { session } => self.close(session, out),
            Frame::Metrics => out.push(Frame::MetricsText {
                text: self.shared.registry.snapshot().to_prometheus().into_bytes(),
            }),
            Frame::Bye => self.done = true,
            // Server-to-client frames arriving at the server are a
            // confused (or hostile) peer.
            other => out.push(Frame::Error {
                code: ErrorCode::Protocol,
                message: format!("unexpected frame kind {:#04x}", other.kind()).into_bytes(),
            }),
        }
    }

    fn add_pattern(&mut self, wild: Option<u8>, bytes: &[u8], out: &mut Vec<Frame>) {
        let cfg = &self.shared.config;
        let reject = |message: &str, out: &mut Vec<Frame>| {
            out.push(Frame::Error {
                code: ErrorCode::BadPattern,
                message: message.as_bytes().to_vec(),
            })
        };
        if self.patterns.len() >= cfg.max_patterns {
            return reject("pattern cap reached for this connection", out);
        }
        if bytes.len() > cfg.max_pattern_len {
            return reject("pattern longer than the configured maximum", out);
        }
        match Pattern::from_bytes(bytes, wild, Alphabet::EIGHT_BIT) {
            Ok(p) => {
                self.patterns.push(p);
                self.proto = None; // dictionary is dirty
                out.push(Frame::PatternAdded {
                    id: (self.patterns.len() - 1) as u32,
                });
            }
            Err(e) => reject(&e.to_string(), out),
        }
    }

    /// Compiles (or reuses) the connection's dictionary prototype.
    fn prototype(&mut self) -> &DictionaryMatcher {
        if self.proto.is_none() {
            let dict = PatternDictionary::new(&self.patterns, self.shared.config.width);
            dict.record_plan(&self.shared.sink);
            self.proto = Some(dict.matcher());
        }
        self.proto.as_ref().expect("just compiled")
    }

    fn open_session(&mut self, out: &mut Vec<Frame>) {
        match self.shared.admit_session() {
            Some(id) => {
                let mut matcher = self.prototype().clone();
                matcher.reset();
                self.sessions.insert(
                    id,
                    Session {
                        matcher,
                        chars: 0,
                        events: 0,
                        busy_attempts: 0,
                    },
                );
                self.shared
                    .sink
                    .record(TraceEvent::SessionOpened { session: id });
                out.push(Frame::SessionOpened { session: id });
            }
            None => {
                let retry_after_ms = self.shared.config.retry_after_ms(1);
                self.shared
                    .sink
                    .record(TraceEvent::SessionRejected { retriable: true });
                self.shared.sink.record(TraceEvent::BackpressureSignalled {
                    session: 0,
                    backoff_ms: u64::from(retry_after_ms),
                });
                out.push(Frame::ServerBusy {
                    reason: BusyReason::Sessions,
                    retry_after_ms,
                });
            }
        }
    }

    fn feed(&mut self, session: u64, bytes: &[u8], out: &mut Vec<Frame>) {
        let cfg = &self.shared.config;
        let Some(s) = self.sessions.get_mut(&session) else {
            out.push(Frame::Error {
                code: ErrorCode::UnknownSession,
                message: format!("no session {session} on this connection").into_bytes(),
            });
            return;
        };
        if bytes.len() > cfg.session_budget_bytes {
            // Hard bound: a retry of the same chunk can never fit.
            self.shared
                .sink
                .record(TraceEvent::SessionRejected { retriable: false });
            out.push(Frame::Error {
                code: ErrorCode::ChunkTooLarge,
                message: format!(
                    "chunk of {} bytes exceeds the {}-byte session budget",
                    bytes.len(),
                    cfg.session_budget_bytes
                )
                .into_bytes(),
            });
            return;
        }
        // Lease batch-slot bytes from the session's shard of the
        // memory system; exhaustion is retriable backpressure scoped
        // to that shard's slice of the budget.
        let shard = self.shared.router.shard_for(session);
        let Some(lease) = shard.pool().try_lease(bytes.len() as u64) else {
            s.busy_attempts += 1;
            let retry_after_ms = cfg.retry_after_ms(s.busy_attempts);
            self.shared
                .sink
                .record(TraceEvent::SessionRejected { retriable: true });
            self.shared.sink.record(TraceEvent::BackpressureSignalled {
                session,
                backoff_ms: u64::from(retry_after_ms),
            });
            out.push(Frame::ServerBusy {
                reason: BusyReason::GlobalBudget,
                retry_after_ms,
            });
            return;
        };
        s.busy_attempts = 0;
        // EIGHT_BIT alphabet: every byte is a valid symbol, so the
        // conversion cannot fail.
        let symbols: Vec<Symbol> = bytes.iter().map(|&b| Symbol::new(b)).collect();
        let events = s.matcher.feed(&symbols);
        drop(lease); // chunk matched: bytes return to the pool
        s.chars += bytes.len() as u64;
        if !events.is_empty() {
            s.events += events.len() as u64;
            self.shared.sink.record(TraceEvent::EventsDelivered {
                session,
                events: events.len() as u64,
            });
            out.push(Frame::MatchEvents {
                session,
                events: events
                    .iter()
                    .map(|e| Match {
                        pattern: e.pattern as u32,
                        end: e.end as u64,
                    })
                    .collect(),
            });
        }
        out.push(Frame::FeedOk {
            session,
            consumed: s.chars,
        });
    }

    fn close(&mut self, session: u64, out: &mut Vec<Frame>) {
        match self.sessions.remove(&session) {
            Some(s) => {
                self.shared.release_sessions(1);
                self.shared.sink.record(TraceEvent::SessionClosed {
                    session,
                    chars: s.chars,
                    events: s.events,
                });
                out.push(Frame::Closed {
                    session,
                    chars: s.chars,
                    events: s.events,
                });
            }
            None => out.push(Frame::Error {
                code: ErrorCode::UnknownSession,
                message: format!("no session {session} on this connection").into_bytes(),
            }),
        }
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        // A dropped connection (client hangup, watchdog reap) returns
        // its sessions to the global cap.
        let n = self.sessions.len();
        if n > 0 {
            self.shared.release_sessions(n);
            for (&id, s) in &self.sessions {
                self.shared.sink.record(TraceEvent::SessionClosed {
                    session: id,
                    chars: s.chars,
                    events: s.events,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_chip::throughput::SuperWidth;

    fn shared(config: ServeConfig) -> Arc<Shared> {
        Shared::new(config)
    }

    fn handle(conn: &mut Conn, frame: Frame) -> Vec<Frame> {
        let mut out = Vec::new();
        conn.handle(frame, &mut out);
        out
    }

    /// Runs the canonical happy path and returns the events delivered.
    fn run_session(conn: &mut Conn, chunks: &[&[u8]]) -> Vec<Match> {
        let opened = handle(conn, Frame::OpenSession);
        let Frame::SessionOpened { session } = opened[0] else {
            panic!("expected SessionOpened, got {opened:?}");
        };
        let mut events = Vec::new();
        for chunk in chunks {
            for f in handle(
                conn,
                Frame::Feed {
                    session,
                    bytes: chunk.to_vec(),
                },
            ) {
                match f {
                    Frame::MatchEvents { events: e, .. } => events.extend(e),
                    Frame::FeedOk { .. } => {}
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        let closed = handle(conn, Frame::Close { session });
        assert!(matches!(closed[0], Frame::Closed { .. }));
        events
    }

    #[test]
    fn hello_and_metrics_answer() {
        let mut conn = Conn::new(shared(ServeConfig::default()));
        let out = handle(&mut conn, Frame::Hello { version: 1 });
        assert!(matches!(out[0], Frame::HelloOk { .. }));
        let out = handle(&mut conn, Frame::Metrics);
        let Frame::MetricsText { text } = &out[0] else {
            panic!("expected MetricsText");
        };
        let text = String::from_utf8(text.clone()).unwrap();
        assert!(text.contains("pm_frames_total"), "{text}");
    }

    #[test]
    fn matches_cross_chunk_boundaries() {
        let mut conn = Conn::new(shared(ServeConfig {
            width: SuperWidth::W1,
            ..ServeConfig::default()
        }));
        let out = handle(
            &mut conn,
            Frame::AddPattern {
                wild: None,
                bytes: b"needle".to_vec(),
            },
        );
        assert_eq!(out, vec![Frame::PatternAdded { id: 0 }]);
        // Split "needle" across three chunks; the match must still be
        // reported once, at its global end offset.
        let events = run_session(&mut conn, &[b"say nee", b"dl", b"e twice: needle"]);
        assert_eq!(
            events,
            vec![
                Match { pattern: 0, end: 9 },
                Match {
                    pattern: 0,
                    end: 23
                }
            ]
        );
    }

    #[test]
    fn session_cap_rejects_then_recovers() {
        let s = shared(ServeConfig {
            max_sessions: 2,
            ..ServeConfig::default()
        });
        let mut conn = Conn::new(s.clone());
        let a = handle(&mut conn, Frame::OpenSession);
        let b = handle(&mut conn, Frame::OpenSession);
        assert!(matches!(a[0], Frame::SessionOpened { .. }));
        let Frame::SessionOpened { session } = b[0] else {
            panic!()
        };
        // Third open: admission control says busy, with a retry hint.
        let busy = handle(&mut conn, Frame::OpenSession);
        assert!(
            matches!(
                busy[0],
                Frame::ServerBusy {
                    reason: BusyReason::Sessions,
                    retry_after_ms
                } if retry_after_ms >= 1
            ),
            "{busy:?}"
        );
        // Closing one frees the slot; the retry is admitted.
        handle(&mut conn, Frame::Close { session });
        let again = handle(&mut conn, Frame::OpenSession);
        assert!(matches!(again[0], Frame::SessionOpened { .. }));
        assert_eq!(s.registry.snapshot().sessions_rejected, 1);
    }

    #[test]
    fn global_budget_backpressure_escalates_and_resets() {
        let s = shared(ServeConfig {
            global_budget_bytes: 8,
            ..ServeConfig::default()
        });
        let mut conn = Conn::new(s.clone());
        let opened = handle(&mut conn, Frame::OpenSession);
        let Frame::SessionOpened { session } = opened[0] else {
            panic!()
        };
        // Hold the whole budget from outside (as a concurrent worker
        // mid-batch would).
        let hog = s.pool.try_lease(8).unwrap();
        let mut hints = Vec::new();
        for _ in 0..3 {
            let out = handle(
                &mut conn,
                Frame::Feed {
                    session,
                    bytes: b"abcd".to_vec(),
                },
            );
            let Frame::ServerBusy {
                reason: BusyReason::GlobalBudget,
                retry_after_ms,
            } = out[0]
            else {
                panic!("expected busy, got {out:?}");
            };
            hints.push(retry_after_ms);
        }
        assert!(
            hints.windows(2).all(|w| w[0] <= w[1]),
            "retry hints must not shrink while starved: {hints:?}"
        );
        drop(hog);
        let out = handle(
            &mut conn,
            Frame::Feed {
                session,
                bytes: b"abcd".to_vec(),
            },
        );
        assert!(
            matches!(out.last(), Some(Frame::FeedOk { consumed: 4, .. })),
            "{out:?}"
        );
        assert_eq!(s.pool.in_flight(), 0, "lease returned after the chunk");
        assert_eq!(s.registry.snapshot().backpressure_signals, 3);
    }

    #[test]
    fn backpressure_is_scoped_to_the_sessions_shard() {
        // Two shards split the 8-byte budget 4/4. Session ids are
        // allocated from 1, so the first session lands on shard 1 and
        // the second on shard 0.
        let s = shared(ServeConfig {
            shards: 2,
            global_budget_bytes: 8,
            ..ServeConfig::default()
        });
        let mut conn = Conn::new(s.clone());
        let Frame::SessionOpened { session: first } = handle(&mut conn, Frame::OpenSession)[0]
        else {
            panic!()
        };
        let Frame::SessionOpened { session: second } = handle(&mut conn, Frame::OpenSession)[0]
        else {
            panic!()
        };
        assert_eq!((first, second), (1, 2));
        // Starve shard 1 (session 1's shard) from outside.
        let hog = s.router.shard(1).pool().try_lease(4).unwrap();
        let out = handle(
            &mut conn,
            Frame::Feed {
                session: first,
                bytes: b"abcd".to_vec(),
            },
        );
        assert!(
            matches!(
                out[0],
                Frame::ServerBusy {
                    reason: BusyReason::GlobalBudget,
                    ..
                }
            ),
            "{out:?}"
        );
        // Session 2 lives on shard 0, whose slice of the budget is
        // untouched: its feed sails through.
        let out = handle(
            &mut conn,
            Frame::Feed {
                session: second,
                bytes: b"abcd".to_vec(),
            },
        );
        assert!(
            matches!(out.last(), Some(Frame::FeedOk { consumed: 4, .. })),
            "{out:?}"
        );
        drop(hog);
        let out = handle(
            &mut conn,
            Frame::Feed {
                session: first,
                bytes: b"abcd".to_vec(),
            },
        );
        assert!(
            matches!(out.last(), Some(Frame::FeedOk { consumed: 4, .. })),
            "{out:?}"
        );
    }

    #[test]
    fn oversized_chunk_is_a_hard_error() {
        let s = shared(ServeConfig {
            session_budget_bytes: 4,
            ..ServeConfig::default()
        });
        let mut conn = Conn::new(s);
        let opened = handle(&mut conn, Frame::OpenSession);
        let Frame::SessionOpened { session } = opened[0] else {
            panic!()
        };
        let out = handle(
            &mut conn,
            Frame::Feed {
                session,
                bytes: b"too big".to_vec(),
            },
        );
        assert!(
            matches!(
                &out[0],
                Frame::Error {
                    code: ErrorCode::ChunkTooLarge,
                    ..
                }
            ),
            "{out:?}"
        );
    }

    #[test]
    fn unknown_session_and_bad_pattern_error() {
        let mut conn = Conn::new(shared(ServeConfig {
            max_pattern_len: 4,
            ..ServeConfig::default()
        }));
        let out = handle(
            &mut conn,
            Frame::Feed {
                session: 42,
                bytes: vec![],
            },
        );
        assert!(matches!(
            &out[0],
            Frame::Error {
                code: ErrorCode::UnknownSession,
                ..
            }
        ));
        let out = handle(
            &mut conn,
            Frame::AddPattern {
                wild: None,
                bytes: b"toolong".to_vec(),
            },
        );
        assert!(matches!(
            &out[0],
            Frame::Error {
                code: ErrorCode::BadPattern,
                ..
            }
        ));
        // Empty patterns are rejected by the compiler, not a panic.
        let out = handle(
            &mut conn,
            Frame::AddPattern {
                wild: None,
                bytes: vec![],
            },
        );
        assert!(matches!(
            &out[0],
            Frame::Error {
                code: ErrorCode::BadPattern,
                ..
            }
        ));
    }

    #[test]
    fn dropped_connection_returns_sessions_to_the_cap() {
        let s = shared(ServeConfig {
            max_sessions: 1,
            ..ServeConfig::default()
        });
        let mut conn = Conn::new(s.clone());
        assert!(matches!(
            handle(&mut conn, Frame::OpenSession)[0],
            Frame::SessionOpened { .. }
        ));
        assert_eq!(s.open_sessions.load(Ordering::Relaxed), 1);
        drop(conn); // hangup without CLOSE
        assert_eq!(s.open_sessions.load(Ordering::Relaxed), 0);
        let mut conn2 = Conn::new(s);
        assert!(matches!(
            handle(&mut conn2, Frame::OpenSession)[0],
            Frame::SessionOpened { .. }
        ));
    }

    #[test]
    fn bye_finishes_the_connection() {
        let mut conn = Conn::new(shared(ServeConfig::default()));
        assert!(!conn.finished());
        assert!(handle(&mut conn, Frame::Bye).is_empty());
        assert!(conn.finished());
    }

    #[test]
    fn telemetry_counts_the_whole_conversation() {
        let s = shared(ServeConfig {
            width: SuperWidth::W1,
            ..ServeConfig::default()
        });
        let mut conn = Conn::new(s.clone());
        handle(
            &mut conn,
            Frame::AddPattern {
                wild: None,
                bytes: b"ab".to_vec(),
            },
        );
        let events = run_session(&mut conn, &[b"xxabxxab"]);
        assert_eq!(events.len(), 2);
        let snap = s.registry.snapshot();
        assert_eq!(snap.sessions_opened, 1);
        assert_eq!(snap.sessions_closed, 1);
        assert_eq!(snap.session_chars, 8);
        assert_eq!(snap.events_delivered, 2);
        assert!(snap.frames >= 4, "add + open + feed + close");
        assert!(snap.frame_bytes >= 10, "pattern bytes + chunk bytes");
        let prom = snap.to_prometheus();
        assert!(prom.contains("pm_sessions_opened_total 1"), "{prom}");
        assert!(prom.contains("pm_events_delivered_total 2"), "{prom}");
    }
}
