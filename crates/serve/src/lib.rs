//! # pm-serve — the streaming match service
//!
//! The paper's closing opinion (§5) is that a special-purpose engine
//! is only as useful as the system interface that feeds it. This crate
//! is that interface for the pattern-matching farm: a `std`-only,
//! thread-per-core TCP front door that multiplexes thousands of client
//! *sessions* — independent streamed texts — into the superplane
//! dictionary engine, with explicit admission control and
//! backpressure.
//!
//! ## Shape
//!
//! - [`protocol`] — the length-prefixed binary frame vocabulary
//!   (`HELLO` … `BYE`), an incremental [`Decoder`](protocol::Decoder)
//!   for nonblocking sockets, and blocking helpers for clients.
//! - [`session`] — the socket-free state machine: connections own
//!   compiled pattern dictionaries, sessions clone per-stream matchers
//!   from them, and every `FEED` chunk leases batch-slot bytes from a
//!   global [`SlotPool`](pm_chip::throughput::SlotPool).
//! - [`server`] — acceptor plus worker threads; [`MatchServer`] is
//!   the handle.
//! - [`client`] — a blocking [`MatchClient`] honouring `SERVER_BUSY`
//!   retry hints.
//! - [`config`] — [`ServeConfig`]: caps, budgets and the
//!   `RetryPolicy`-paced backoff hints.
//!
//! ## Admission control and backpressure
//!
//! Three bounds keep the host side finite, in the order a request
//! meets them: the global *session cap* (`OPEN_SESSION` beyond it →
//! `SERVER_BUSY`), the per-session *chunk budget* (an oversized `FEED`
//! is a hard `ERROR` — no retry can fit), and the global *byte budget*
//! (`FEED` bytes lease batch-slot capacity; exhaustion → `SERVER_BUSY`
//! with an escalating, `RetryPolicy`-paced hint). Sessions use the
//! chunked `feed` path of
//! [`DictionaryMatcher`](pm_chip::dictionary::DictionaryMatcher), so
//! matches spanning chunk boundaries are exact and event offsets are
//! global across the whole stream.
//!
//! ## Quickstart
//!
//! ```
//! use pm_serve::prelude::*;
//!
//! let server = MatchServer::start(ServeConfig::default())?;
//! let mut client = MatchClient::connect(server.local_addr())?;
//! let id = client.add_pattern(b"needle", None)?;
//! let session = client.open_session()?;
//! let (events, _consumed) = client.feed(session, b"hay needle hay")?;
//! assert_eq!(events, vec![Match { pattern: id, end: 9 }]);
//! client.close_session(session)?;
//! client.bye()?;
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod protocol;
pub mod server;
pub mod session;

pub use client::{ClientError, MatchClient};
pub use config::ServeConfig;
pub use server::MatchServer;

/// Everything a server or client embedding needs.
pub mod prelude {
    pub use crate::client::{ClientError, MatchClient};
    pub use crate::config::ServeConfig;
    pub use crate::protocol::{BusyReason, ErrorCode, Frame, Match};
    pub use crate::server::MatchServer;
    pub use crate::session::{Conn, Shared};
}
