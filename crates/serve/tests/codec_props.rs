//! Protocol-codec properties: every frame survives the wire, at any
//! split granularity, and hostile bytes can never panic the decoder or
//! provoke an unbounded allocation.
//!
//! The incremental [`Decoder`] is the piece of the server that faces
//! raw network input, so its obligations are stated as properties:
//!
//! 1. **round-trip** — `decode(encode(f)) == f` for arbitrary frames
//!    of every kind;
//! 2. **split-invariance** — a wire image cut at arbitrary byte
//!    boundaries decodes to the same frame sequence as one big push;
//! 3. **garbage-tolerance** — arbitrary bytes produce frames or a
//!    `CodecError`, never a panic, and a declared length beyond
//!    `MAX_FRAME` (up to `u32::MAX`) is rejected from the 4-byte
//!    header alone, before any body is buffered.

use pm_serve::protocol::{BusyReason, CodecError, Decoder, ErrorCode, Frame, Match, MAX_FRAME};
use proptest::prelude::*;

/// Arbitrary frames across the whole vocabulary, with small bodies
/// (the codec is length-driven; big bodies only slow the suite).
fn frame() -> impl Strategy<Value = Frame> {
    let bytes = proptest::collection::vec(any::<u8>(), 0..48);
    let matches = proptest::collection::vec(
        (any::<u32>(), any::<u64>()).prop_map(|(pattern, end)| Match { pattern, end }),
        0..8,
    );
    prop_oneof![
        any::<u32>().prop_map(|version| Frame::Hello { version }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(version, max_frame)| Frame::HelloOk { version, max_frame }),
        (proptest::option::weighted(0.5, any::<u8>()), bytes.clone())
            .prop_map(|(wild, bytes)| Frame::AddPattern { wild, bytes }),
        any::<u32>().prop_map(|id| Frame::PatternAdded { id }),
        Just(Frame::OpenSession),
        any::<u64>().prop_map(|session| Frame::SessionOpened { session }),
        (any::<u64>(), bytes.clone()).prop_map(|(session, bytes)| Frame::Feed { session, bytes }),
        (any::<u64>(), matches)
            .prop_map(|(session, events)| Frame::MatchEvents { session, events }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(session, consumed)| Frame::FeedOk { session, consumed }),
        any::<u64>().prop_map(|session| Frame::Close { session }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(session, chars, events)| {
            Frame::Closed {
                session,
                chars,
                events,
            }
        }),
        Just(Frame::Metrics),
        bytes.clone().prop_map(|text| Frame::MetricsText { text }),
        (
            prop_oneof![Just(BusyReason::Sessions), Just(BusyReason::GlobalBudget)],
            any::<u32>()
        )
            .prop_map(|(reason, retry_after_ms)| Frame::ServerBusy {
                reason,
                retry_after_ms
            }),
        (
            prop_oneof![
                Just(ErrorCode::Protocol),
                Just(ErrorCode::UnknownSession),
                Just(ErrorCode::BadPattern),
                Just(ErrorCode::ChunkTooLarge),
            ],
            bytes
        )
            .prop_map(|(code, message)| Frame::Error { code, message }),
        Just(Frame::Bye),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_frame_round_trips(f in frame()) {
        let wire = f.to_bytes();
        let mut d = Decoder::new();
        d.push(&wire);
        prop_assert_eq!(d.next().unwrap(), Some(f));
        prop_assert_eq!(d.next().unwrap(), None);
        prop_assert_eq!(d.pending(), 0);
    }

    #[test]
    fn arbitrary_split_points_decode_identically(
        frames in proptest::collection::vec(frame(), 1..8),
        cuts in proptest::collection::vec(any::<u16>(), 0..16),
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            f.encode(&mut wire);
        }
        // Turn the arbitrary u16s into sorted in-range cut positions.
        let mut cuts: Vec<usize> = cuts
            .into_iter()
            .map(|c| c as usize % (wire.len() + 1))
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        cuts.push(wire.len());

        let mut d = Decoder::new();
        let mut decoded = Vec::new();
        let mut at = 0;
        for cut in cuts {
            d.push(&wire[at..cut]);
            at = cut;
            while let Some(f) = d.next().unwrap() {
                decoded.push(f);
            }
        }
        prop_assert_eq!(decoded, frames);
    }

    #[test]
    fn truncated_wire_never_yields_a_wrong_frame(
        frames in proptest::collection::vec(frame(), 1..5),
        cut in any::<u16>(),
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            f.encode(&mut wire);
        }
        let cut = cut as usize % (wire.len() + 1);
        let mut d = Decoder::new();
        d.push(&wire[..cut]);
        let mut decoded = Vec::new();
        while let Some(f) = d.next().unwrap() {
            decoded.push(f);
        }
        // A truncated stream decodes to a strict prefix, then waits.
        prop_assert!(decoded.len() <= frames.len());
        prop_assert_eq!(&decoded[..], &frames[..decoded.len()]);
    }

    #[test]
    fn garbage_never_panics_and_never_overbuffers(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut d = Decoder::new();
        d.push(&bytes);
        // Drain until quiescent: frames, a clean error, or starvation.
        while let Ok(Some(_)) = d.next() {}
        prop_assert!(d.pending() <= bytes.len());
    }

    #[test]
    fn oversized_length_is_rejected_from_the_header_alone(
        len in (MAX_FRAME + 1)..=u32::MAX,
        tail in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let mut d = Decoder::new();
        d.push(&len.to_le_bytes());
        d.push(&tail);
        // Rejected without waiting for (or allocating) a `len`-sized
        // body: the decoder holds only what was pushed.
        prop_assert_eq!(d.next(), Err(CodecError::BadLength { len }));
        prop_assert!(d.pending() <= 4 + tail.len());
    }

    #[test]
    fn zero_length_header_is_rejected(tail in proptest::collection::vec(any::<u8>(), 0..16)) {
        let mut d = Decoder::new();
        d.push(&0u32.to_le_bytes());
        d.push(&tail);
        prop_assert_eq!(d.next(), Err(CodecError::BadLength { len: 0 }));
    }

    #[test]
    fn unknown_kind_bytes_error_cleanly(kind in 0x08u8..0x81, body in proptest::collection::vec(any::<u8>(), 0..32)) {
        // 0x08..=0x80 is the hole in the vocabulary between the last
        // client kind and the first server kind.
        let mut payload = vec![kind];
        payload.extend_from_slice(&body);
        let mut wire = ((payload.len()) as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&payload);
        let mut d = Decoder::new();
        d.push(&wire);
        prop_assert_eq!(d.next(), Err(CodecError::UnknownKind(kind)));
    }

    #[test]
    fn flipping_one_header_byte_cannot_panic(f in frame(), at in any::<u16>(), bit in 0u8..8) {
        let mut wire = f.to_bytes();
        let at = at as usize % wire.len();
        wire[at] ^= 1 << bit;
        let mut d = Decoder::new();
        d.push(&wire);
        // Corruption may still parse (body bytes), error, or starve —
        // anything but a panic or runaway buffering.
        while let Ok(Some(_)) = d.next() {}
        prop_assert!(d.pending() <= wire.len());
    }
}
