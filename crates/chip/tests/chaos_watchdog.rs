//! Wall-clock watchdog test, `#[ignore]`d by default: it sleeps real
//! milliseconds, so it runs only where timing is deliberate (the CI
//! `chaos` job invokes it with `-- --ignored`).

use pm_chip::faults::{FaultPlan, PlaneFault};
use pm_chip::throughput::{Job, ResiliencePolicy, ThroughputEngine};
use pm_systolic::prelude::*;
use pm_systolic::symbol::text_from_letters;
use std::time::{Duration, Instant};

#[test]
#[ignore = "sleeps real wall-clock milliseconds; run with -- --ignored"]
fn stalled_workers_are_quarantined_within_the_watchdog_bound() {
    let pattern = Pattern::parse("ABCA").unwrap();
    let jobs: Vec<Job> = (0..96)
        .map(|id| {
            Job::new(
                id,
                pattern.clone(),
                text_from_letters("ABCABCAABCACABCABBCA").unwrap(),
            )
        })
        .collect();
    let mut engine = ThroughputEngine::new(2, 8);
    engine.set_width(pm_chip::throughput::SuperWidth::W1); // several batches
    engine.set_resilience(Some(ResiliencePolicy {
        watchdog: Duration::from_millis(30),
        ..ResiliencePolicy::default()
    }));
    engine.set_fault_plan(Some(
        FaultPlan::new(7)
            .with_worker_fault_permille(1000)
            .with_forced_kind(PlaneFault::WorkerStall)
            .with_stall_millis(200)
            .with_max_onset_batches(0),
    ));
    let started = Instant::now();
    let report = engine.run(&jobs).unwrap();
    let elapsed = started.elapsed();

    // Every worker stalls 200 ms on its first batch and the watchdog
    // condemns it right there, so the run's wall clock is bounded by
    // one stall per worker plus recovery — far below what letting the
    // stalls run to completion on every batch would cost.
    assert!(
        elapsed < Duration::from_secs(10),
        "stalled run took {elapsed:?}; watchdog failed to bound it"
    );
    let res = report.resilience.expect("resilient run reports");
    assert!(
        !res.quarantined.is_empty(),
        "a 200 ms stall against a 30 ms watchdog must condemn"
    );
    assert!(res
        .quarantined
        .iter()
        .all(|(_, label)| *label == "worker_stall"));
    // And the recovered output is still exactly the specification.
    for (job, out) in jobs.iter().zip(&report.outputs) {
        assert_eq!(out.hits.bits(), match_spec(&job.text, &job.pattern));
    }
}
