//! Property tests for the host-bus peripheral and multi-pass system:
//! driver-visible behaviour equals the specification for arbitrary
//! streams, chunkings and card sizes.

use pm_chip::host::HostBus;
use pm_chip::multipass::MultipassMatcher;
use pm_systolic::prelude::*;
use proptest::prelude::*;

fn workload() -> impl Strategy<Value = (Vec<Option<u8>>, Vec<u8>)> {
    let pat_sym = prop_oneof![
        4 => (0u8..=3).prop_map(Some),
        1 => Just(None),
    ];
    (
        proptest::collection::vec(pat_sym, 1..=6),
        proptest::collection::vec(0u8..=3, 0..=40),
    )
}

fn build(pat: &[Option<u8>]) -> Pattern {
    let syms: Vec<PatSym> = pat
        .iter()
        .map(|o| match o {
            Some(v) => PatSym::Lit(Symbol::new(*v)),
            None => PatSym::Wild,
        })
        .collect();
    Pattern::new(syms, Alphabet::TWO_BIT).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn host_events_equal_spec_under_any_chunking(
        (pat, text) in workload(),
        chunk in 1usize..7,
    ) {
        let pattern = build(&pat);
        let mut bus = HostBus::new(8);
        bus.load_pattern(&pattern).unwrap();
        // Stream in arbitrary chunk sizes — the device must not care.
        for piece in text.chunks(chunk) {
            bus.write(piece).unwrap();
        }
        bus.flush().unwrap();
        let mut ends = Vec::new();
        while let Some(ev) = bus.read_event() {
            prop_assert_eq!(ev.end - ev.start, pattern.k() as u64);
            ends.push(ev.end as usize);
        }
        let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        let spec: Vec<usize> = match_spec(&symbols, &pattern)
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(ends, spec);
    }

    #[test]
    fn host_reload_isolates_streams((pat_a, text_a) in workload(), (pat_b, text_b) in workload()) {
        let pa = build(&pat_a);
        let pb = build(&pat_b);
        let mut bus = HostBus::new(8);
        // First stream, then a reload, then a second stream: the second
        // run's events must be exactly a fresh device's.
        bus.load_pattern(&pa).unwrap();
        bus.write(&text_a).unwrap();
        bus.flush().unwrap();
        bus.load_pattern(&pb).unwrap();
        bus.write(&text_b).unwrap();
        bus.flush().unwrap();
        let mut got = Vec::new();
        while let Some(ev) = bus.read_event() {
            got.push(ev.end as usize);
        }
        let symbols: Vec<Symbol> = text_b.iter().map(|&b| Symbol::new(b)).collect();
        let spec: Vec<usize> = match_spec(&symbols, &pb)
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, spec);
    }

    #[test]
    fn multipass_segmenting_never_changes_results(
        (pat, text) in workload(),
        cells_a in 1usize..4,
        cells_b in 4usize..9,
    ) {
        let pattern = build(&pat);
        let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        let small = MultipassMatcher::new(&pattern, cells_a).unwrap().match_symbols(&symbols);
        let large = MultipassMatcher::new(&pattern, cells_b).unwrap().match_symbols(&symbols);
        prop_assert_eq!(small.bits(), large.bits());
        let spec = match_spec(&symbols, &pattern);
        prop_assert_eq!(small.bits(), spec.as_slice());
    }
}
