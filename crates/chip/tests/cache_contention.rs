//! Regression test for the sharded pattern-cache design: a many-worker
//! run over one hot pattern must not fall behind a single worker.
//!
//! The old scheduler kept one global `Mutex<PatternCache>`, so every
//! worker's every lookup serialised through one lock — precisely worst
//! on the most common workload, a service hammered with one hot
//! pattern. The reworked scheduler gives each worker a private cache
//! backed by a shared read-mostly index, so the hot path takes no lock
//! at all. This test pins that property: with one hot pattern split
//! across many `u64`-width batches, sixteen workers must sustain at
//! least the character rate of one.
//!
//! Timing discipline for noisy CI boxes (possibly single-core): the
//! contended configuration gets its *best* of three runs, the baseline
//! its *worst* of three, so scheduler jitter works against the
//! assertion only if the contended path is genuinely slower. Even so,
//! a wall-clock ratio of a 16-thread run against a 1-thread run can
//! misbehave on an oversubscribed 1–2 core box, so the timing test is
//! `#[ignore]` in the default suite and runs in a dedicated CI step
//! (`cargo test ... -- --ignored`); the deterministic cache-behaviour
//! assertions stay in the default suite below.

use pm_chip::throughput::{Job, SuperWidth, ThroughputEngine};
use pm_systolic::symbol::{Pattern, Symbol};

fn hot_jobs() -> Vec<Job> {
    let pattern = Pattern::parse("ABCA").unwrap();
    (0..1024u64)
        .map(|id| {
            let text: Vec<Symbol> = (0..2048)
                .map(|i| Symbol::new(((id as usize + i * 5) % 4) as u8))
                .collect();
            Job::new(id, pattern.clone(), text)
        })
        .collect()
}

fn best_rate(engine: &ThroughputEngine, jobs: &[Job], reps: usize) -> f64 {
    (0..reps)
        .map(|_| engine.run(jobs).unwrap().totals.chars_per_sec())
        .fold(0.0, f64::max)
}

fn worst_rate(engine: &ThroughputEngine, jobs: &[Job], reps: usize) -> f64 {
    (0..reps)
        .map(|_| engine.run(jobs).unwrap().totals.chars_per_sec())
        .fold(f64::INFINITY, f64::min)
}

#[test]
#[ignore = "relative wall-clock throughput; run via `--ignored` in the dedicated CI step"]
fn sixteen_workers_on_one_hot_pattern_keep_up_with_one() {
    let jobs = hot_jobs();

    // u64 width so the hot pattern splits into 16 batches — enough for
    // every worker to claim work (and to steal when its deque drains).
    let mut single = ThroughputEngine::new(1, 8);
    single.set_width(SuperWidth::W1);
    let mut contended = ThroughputEngine::new(16, 8);
    contended.set_width(SuperWidth::W1);

    // Warm both engines (first run pays compilation and page faults).
    single.run(&jobs).unwrap();
    contended.run(&jobs).unwrap();

    let single_worst = worst_rate(&single, &jobs, 3);
    let contended_best = best_rate(&contended, &jobs, 3);
    // 16 threads on a small (possibly single-core) CI box pay real
    // context-switch overhead, so allow a little scheduling slack: the
    // regression this guards against — every lookup serialising through
    // one mutex — costs integer factors, not 15 %.
    assert!(
        contended_best >= 0.85 * single_worst,
        "16 workers ({contended_best:.0} chars/s) fell far behind one \
         worker ({single_worst:.0} chars/s) on a single hot pattern"
    );
}

#[test]
fn hot_pattern_is_compiled_once_across_sixteen_workers() {
    // The deterministic half of the regression: the hot pattern is
    // compiled at most once per engine lifetime per worker tier, so
    // after a warm run every lookup hits a private cache or the shared
    // index — no wall clocks involved, safe on any CI box.
    let jobs = hot_jobs();
    let mut contended = ThroughputEngine::new(16, 8);
    contended.set_width(SuperWidth::W1);
    contended.run(&jobs).unwrap(); // warm: pays the one compilation
    let report = contended.run(&jobs).unwrap();
    assert_eq!(report.totals.cache_misses, 0);
    assert!(report.totals.cache_hit_rate() == 1.0);
}
