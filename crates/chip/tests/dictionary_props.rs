//! Dictionary properties: the superplane chip farm, the Aho–Corasick
//! software oracle, and the scalar specification must agree event for
//! event on arbitrary dictionaries — overlapping patterns, shared
//! prefixes, duplicates, ragged lane counts, patterns longer than a
//! feed chunk — at every superplane width, and dictionary workloads
//! must survive the PR 6 fault plan with spec-identical output.

use pm_chip::dictionary::PatternDictionary;
use pm_chip::faults::FaultPlan;
use pm_chip::throughput::{Job, ResiliencePolicy, SuperWidth, ThroughputEngine};
use pm_matchers::aho_corasick::{AhoCorasick, DictMatch};
use pm_systolic::prelude::*;
use proptest::prelude::*;

const WIDTHS: [SuperWidth; 3] = [SuperWidth::W1, SuperWidth::W4, SuperWidth::W8];

fn build(pat: &[Option<u8>]) -> Pattern {
    let syms: Vec<PatSym> = pat
        .iter()
        .map(|o| match o {
            Some(v) => PatSym::Lit(Symbol::new(*v)),
            None => PatSym::Wild,
        })
        .collect();
    Pattern::new(syms, Alphabet::TWO_BIT).unwrap()
}

fn symbols(text: &[u8]) -> Vec<Symbol> {
    text.iter().map(|&b| Symbol::new(b)).collect()
}

/// The scalar ground truth, one pattern at a time.
fn spec_events(pats: &[Pattern], text: &[Symbol]) -> Vec<DictMatch> {
    let mut events = Vec::new();
    for (id, p) in pats.iter().enumerate() {
        for (end, hit) in match_spec(text, p).iter().enumerate() {
            if *hit {
                events.push(DictMatch { pattern: id, end });
            }
        }
    }
    events.sort_unstable();
    events
}

/// Arbitrary literal dictionaries (AC-comparable) + a text.
fn literal_workload() -> impl Strategy<Value = (Vec<Vec<u8>>, Vec<u8>)> {
    (
        proptest::collection::vec(proptest::collection::vec(0u8..=3, 1..=10), 1..=40),
        proptest::collection::vec(0u8..=3, 0..=120),
    )
}

/// Dictionaries with wild cards (spec-comparable only) + a text.
fn wild_workload() -> impl Strategy<Value = (Vec<Vec<Option<u8>>>, Vec<u8>)> {
    let sym = prop_oneof![
        4 => (0u8..=3).prop_map(Some),
        1 => Just(None),
    ];
    (
        proptest::collection::vec(proptest::collection::vec(sym, 1..=10), 1..=30),
        proptest::collection::vec(0u8..=3, 0..=120),
    )
}

/// Deliberately prefix-heavy dictionaries: every pattern is a stem
/// from a pool of four, plus a short suffix — shared prefixes and
/// duplicates are the common case, not the lucky one.
fn stem_workload() -> impl Strategy<Value = (Vec<Vec<u8>>, Vec<u8>)> {
    let stems = proptest::collection::vec(proptest::collection::vec(0u8..=3, 1..=5), 4);
    (
        stems,
        proptest::collection::vec(
            (0usize..4, proptest::collection::vec(0u8..=3, 0..=5)),
            1..=30,
        ),
        proptest::collection::vec(0u8..=3, 0..=120),
    )
        .prop_map(|(stems, picks, text)| {
            let dict = picks
                .into_iter()
                .map(|(s, suffix)| {
                    let mut p = stems[s].clone();
                    p.extend(suffix);
                    p
                })
                .collect();
            (dict, text)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Literal dictionaries: farm ≡ Aho–Corasick ≡ spec, whole-text.
    #[test]
    fn farm_equals_aho_corasick_and_spec((dict, text) in literal_workload()) {
        let pats: Vec<Pattern> = dict.iter().map(|p| build(&p.iter().map(|&v| Some(v)).collect::<Vec<_>>())).collect();
        let text = symbols(&text);
        let want = spec_events(&pats, &text);
        let oracle = AhoCorasick::new(&pats).unwrap();
        prop_assert_eq!(&oracle.find_all(&text), &want);
        for width in WIDTHS {
            let got = PatternDictionary::new(&pats, width).matcher().find_all(&text);
            prop_assert_eq!(&got, &want, "width {}", width.label());
        }
    }

    /// Prefix-heavy dictionaries: dedup must be loss-free and the
    /// resident count must never exceed the submitted count.
    #[test]
    fn prefix_heavy_dictionaries_are_dedup_safe((dict, text) in stem_workload()) {
        let pats: Vec<Pattern> = dict.iter().map(|p| build(&p.iter().map(|&v| Some(v)).collect::<Vec<_>>())).collect();
        let text = symbols(&text);
        let want = spec_events(&pats, &text);
        let oracle = AhoCorasick::new(&pats).unwrap();
        prop_assert_eq!(&oracle.find_all(&text), &want);
        let dictionary = PatternDictionary::new(&pats, SuperWidth::W4);
        prop_assert!(dictionary.stats().resident <= dictionary.stats().patterns);
        prop_assert_eq!(&dictionary.matcher().find_all(&text), &want);
    }

    /// Wild-card dictionaries (outside AC's domain): farm ≡ spec.
    #[test]
    fn wildcard_farm_equals_spec((dict, text) in wild_workload()) {
        let pats: Vec<Pattern> = dict.iter().map(|p| build(p)).collect();
        let text = symbols(&text);
        let want = spec_events(&pats, &text);
        for width in WIDTHS {
            let got = PatternDictionary::new(&pats, width).matcher().find_all(&text);
            prop_assert_eq!(&got, &want, "width {}", width.label());
        }
    }

    /// Chunked streaming ≡ whole-text, for any chunk size — including
    /// chunks shorter than the longest pattern, so matches straddle
    /// (or span several) feed calls.
    #[test]
    fn chunked_feed_equals_whole_text(
        (dict, text) in wild_workload(),
        chunk in 1usize..=16,
    ) {
        let pats: Vec<Pattern> = dict.iter().map(|p| build(p)).collect();
        let text = symbols(&text);
        let dictionary = PatternDictionary::new(&pats, SuperWidth::W4);
        let whole = dictionary.matcher().find_all(&text);
        let mut m = dictionary.matcher();
        let mut streamed = Vec::new();
        for c in text.chunks(chunk) {
            streamed.extend(m.feed(c));
        }
        prop_assert_eq!(streamed, whole);
    }

    /// The chaos interaction: a dictionary fanned out as one job per
    /// pattern survives a seeded fault campaign with output identical
    /// to the spec — and therefore to the farm's own event stream.
    #[test]
    fn dictionary_batches_survive_the_fault_plan(
        (dict, text) in literal_workload(),
        seed in 0u64..1_000_000,
        permille in 0u32..=800,
    ) {
        let pats: Vec<Pattern> = dict.iter().map(|p| build(&p.iter().map(|&v| Some(v)).collect::<Vec<_>>())).collect();
        let text = symbols(&text);
        let jobs: Vec<Job> = pats
            .iter()
            .enumerate()
            .map(|(id, p)| Job::new(id as u64, p.clone(), text.clone()))
            .collect();
        let mut engine = ThroughputEngine::new(2, 8);
        engine.set_width(SuperWidth::W8);
        engine.set_resilience(Some(ResiliencePolicy::default()));
        engine.set_fault_plan(Some(
            FaultPlan::new(seed)
                .with_worker_fault_permille(permille)
                .with_max_onset_batches(2)
                .with_stall_millis(1),
        ));
        let report = engine.run(&jobs).expect("resilient run");
        let farm_events = PatternDictionary::new(&pats, SuperWidth::W8).matcher().find_all(&text);
        prop_assert_eq!(report.outputs.len(), jobs.len());
        for (job, out) in jobs.iter().zip(&report.outputs) {
            prop_assert_eq!(out.id, job.id);
            prop_assert_eq!(
                out.hits.bits(),
                &match_spec(&text, &job.pattern)[..],
                "job {} diverged under seed {}", job.id, seed
            );
            // The scheduler's per-job bits and the farm's merged event
            // stream describe the same matches.
            let from_farm: Vec<usize> = farm_events
                .iter()
                .filter(|e| e.pattern == job.id as usize)
                .map(|e| e.end)
                .collect();
            prop_assert_eq!(out.hits.ending_positions(), from_farm);
        }
    }
}

/// The acceptance-criterion sweep: 10 / 100 / 1k / 10k distinct
/// patterns, farm ≡ Aho–Corasick at every width, ≡ spec throughout.
#[test]
fn size_sweep_farm_equals_oracle_and_spec() {
    // xorshift64 text so the sweep is deterministic without rand.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut step = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let text: Vec<Symbol> = (0..1000).map(|_| Symbol::new((step() % 4) as u8)).collect();
    for size in [10usize, 100, 1000, 10_000] {
        // Base-4 digits of the index, length 4..=10: distinct by
        // construction, heavy prefix sharing at the low digits.
        let pats: Vec<Pattern> = (0..size)
            .map(|i| {
                let len = 4 + i % 7;
                let syms: Vec<PatSym> = (0..len)
                    .map(|d| PatSym::Lit(Symbol::new(((i >> (2 * d)) % 4) as u8)))
                    .collect();
                Pattern::new(syms, Alphabet::TWO_BIT).unwrap()
            })
            .collect();
        let want = spec_events(&pats, &text);
        let oracle = AhoCorasick::new(&pats).unwrap();
        assert_eq!(oracle.find_all(&text), want, "AC at size {size}");
        for width in WIDTHS {
            let dictionary = PatternDictionary::new(&pats, width);
            assert_eq!(dictionary.stats().patterns, size);
            assert_eq!(
                dictionary.matcher().find_all(&text),
                want,
                "farm at size {size}, width {}",
                width.label()
            );
        }
    }
}
