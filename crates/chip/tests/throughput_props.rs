//! Property tests: the threaded job scheduler returns exactly what the
//! executable specification returns, job for job, for arbitrary job
//! mixes, worker counts and cache sizes.

use pm_chip::throughput::{Job, ThroughputEngine};
use pm_systolic::prelude::*;
use proptest::prelude::*;

/// A pattern pool (each pattern a list of literal-or-wild symbols) and
/// a job list of (pool index, text) pairs.
type JobWorkload = (Vec<Vec<Option<u8>>>, Vec<(usize, Vec<u8>)>);

/// Strategy: a small pool of patterns (so jobs repeat patterns and the
/// cache / uniform-batch paths fire) and a list of jobs drawn from it.
fn job_workload() -> impl Strategy<Value = JobWorkload> {
    let pat_sym = prop_oneof![
        4 => (0u8..=3).prop_map(Some),
        1 => Just(None), // wild card
    ];
    let pool = proptest::collection::vec(proptest::collection::vec(pat_sym, 1..=8), 1..=4);
    pool.prop_flat_map(|pool| {
        let picks = pool.len();
        (
            Just(pool),
            proptest::collection::vec(
                (0..picks, proptest::collection::vec(0u8..=3, 0..=30)),
                0..=80,
            ),
        )
    })
}

fn build(pat: &[Option<u8>]) -> Pattern {
    let syms: Vec<PatSym> = pat
        .iter()
        .map(|o| match o {
            Some(v) => PatSym::Lit(Symbol::new(*v)),
            None => PatSym::Wild,
        })
        .collect();
    Pattern::new(syms, Alphabet::TWO_BIT).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scheduler_equals_spec_per_job(
        (pool, specs) in job_workload(),
        workers in 1usize..6,
        cache in 1usize..5,
    ) {
        let patterns: Vec<Pattern> = pool.iter().map(|p| build(p)).collect();
        let jobs: Vec<Job> = specs
            .iter()
            .enumerate()
            .map(|(id, (pick, text))| {
                let symbols: Vec<Symbol> =
                    text.iter().map(|&b| Symbol::new(b)).collect();
                Job::new(id as u64, patterns[*pick].clone(), symbols)
            })
            .collect();
        let report = ThroughputEngine::new(workers, cache).run(&jobs).unwrap();

        // One output per job, in job order, each equal to the spec.
        prop_assert_eq!(report.outputs.len(), jobs.len());
        for (job, out) in jobs.iter().zip(&report.outputs) {
            prop_assert_eq!(out.id, job.id);
            prop_assert_eq!(
                out.hits.bits(),
                match_spec(&job.text, &job.pattern)
            );
        }

        // Accounting invariants: every character is counted exactly
        // once, lanes never overfill, and cache lookups are bounded by
        // distinct patterns below (each must be compiled at least once
        // somewhere) and by the job count above (one lookup per
        // pattern group per worker).
        let chars: u64 = jobs.iter().map(|j| j.text.len() as u64).sum();
        prop_assert_eq!(report.totals.chars, chars);
        prop_assert!(report.totals.lane_slots_used <= report.totals.lane_slots_total);
        let lookups = report.totals.cache_hits + report.totals.cache_misses;
        let distinct: std::collections::HashSet<&Pattern> =
            jobs.iter().map(|j| &j.pattern).collect();
        prop_assert!(lookups >= distinct.len() as u64);
        prop_assert!(lookups <= jobs.len() as u64);
        let worker_chars: u64 = report.workers.iter().map(|w| w.chars).sum();
        prop_assert_eq!(worker_chars, chars);
    }
}
