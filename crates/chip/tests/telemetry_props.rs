//! Property tests: telemetry is an *exact* mirror of the work, not an
//! estimate. Counters folded from the trace-event stream must agree
//! with the ground truth the engines return — matches emitted, beats
//! executed, jobs completed — for arbitrary workloads, including the
//! ragged `N % 64 ≠ 0` lane path.

use pm_chip::telemetry::MetricsRegistry;
use pm_chip::throughput::{Job, ThroughputEngine};
use pm_systolic::batch::PlaneDriver;
use pm_systolic::prelude::*;
use pm_systolic::telemetry::SinkHandle;
use proptest::prelude::*;
use std::sync::Arc;

fn build(pat: &[Option<u8>]) -> Pattern {
    let syms: Vec<PatSym> = pat
        .iter()
        .map(|o| match o {
            Some(v) => PatSym::Lit(Symbol::new(*v)),
            None => PatSym::Wild,
        })
        .collect();
    Pattern::new(syms, Alphabet::TWO_BIT).unwrap()
}

/// A shared-length pattern plus 1..=64 equal-length texts — the
/// beat-accurate [`PlaneDriver`] workload. Lane counts deliberately
/// cover the ragged range, not just full words.
fn plane_workload() -> impl Strategy<Value = (Vec<Option<u8>>, Vec<Vec<u8>>)> {
    let pat_sym = prop_oneof![
        4 => (0u8..=3).prop_map(Some),
        1 => Just(None), // wild card
    ];
    (
        proptest::collection::vec(pat_sym, 1..=6),
        (1usize..=64, 0usize..=24),
    )
        .prop_flat_map(|(pat, (lanes, tlen))| {
            (
                Just(pat),
                proptest::collection::vec(
                    proptest::collection::vec(0u8..=3, tlen..=tlen),
                    lanes..=lanes,
                ),
            )
        })
}

/// A pattern pool and jobs drawn from it (mirrors the scheduler
/// proptest's workload shape).
type JobWorkload = (Vec<Vec<Option<u8>>>, Vec<(usize, Vec<u8>)>);

fn job_workload() -> impl Strategy<Value = JobWorkload> {
    let pat_sym = prop_oneof![
        4 => (0u8..=3).prop_map(Some),
        1 => Just(None),
    ];
    let pool = proptest::collection::vec(proptest::collection::vec(pat_sym, 1..=8), 1..=4);
    pool.prop_flat_map(|pool| {
        let picks = pool.len();
        (
            Just(pool),
            proptest::collection::vec(
                (0..picks, proptest::collection::vec(0u8..=3, 0..=30)),
                0..=80,
            ),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The beat-accurate path: clock events count every beat exactly,
    /// text injections count every position, and comparator-fire lane
    /// popcounts sum to the ground-truth match total.
    #[test]
    fn plane_driver_telemetry_is_exact((pat, texts) in plane_workload()) {
        let pattern = build(&pat);
        let patterns: Vec<Pattern> = (0..texts.len()).map(|_| pattern.clone()).collect();
        let symbol_texts: Vec<Vec<Symbol>> = texts
            .iter()
            .map(|t| t.iter().map(|&b| Symbol::new(b)).collect())
            .collect();
        let lanes: Vec<&[Symbol]> = symbol_texts.iter().map(|t| t.as_slice()).collect();

        let mut driver = PlaneDriver::new(&patterns).unwrap();
        let metrics = MetricsRegistry::new();
        let hits = driver.run_with_sink(&lanes, &metrics).unwrap();

        // Results are still the spec, sink or no sink.
        for (h, t) in hits.iter().zip(&symbol_texts) {
            prop_assert_eq!(h.bits(), match_spec(t, &pattern));
        }
        let snap = metrics.snapshot();

        // Beats executed: 2 per text position (feed) + 2·slack (drain),
        // where slack = cells + 2·pattern_len + 4 and cells = k+1.
        let tmax = texts.first().map_or(0, |t| t.len()) as u64;
        let slack = (pattern.len() + 2 * pattern.len() + 4) as u64;
        prop_assert_eq!(snap.beats, 2 * tmax + 2 * slack);
        prop_assert_eq!(snap.clock_phases, 2 * snap.beats);
        prop_assert_eq!(snap.texts_injected, tmax);

        // Matches emitted: the comparator-fire popcount sum equals the
        // ground-truth match count across every lane.
        let truth: u64 = hits.iter().map(|h| h.count() as u64).sum();
        prop_assert_eq!(snap.match_lanes, truth);

        // One fire per complete window.
        let k = pattern.k() as u64;
        prop_assert_eq!(snap.comparator_fires, tmax.saturating_sub(k));
    }

    /// The scheduler path: job/char/match/batch counters folded from
    /// the event stream agree with the report the engine returns, for
    /// arbitrary job mixes and worker counts (ragged batches included —
    /// job counts are rarely multiples of 64).
    #[test]
    fn scheduler_telemetry_is_exact(
        (pool, specs) in job_workload(),
        workers in 1usize..6,
    ) {
        let patterns: Vec<Pattern> = pool.iter().map(|p| build(p)).collect();
        let jobs: Vec<Job> = specs
            .iter()
            .enumerate()
            .map(|(id, (pick, text))| {
                let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
                Job::new(id as u64, patterns[*pick].clone(), symbols)
            })
            .collect();

        let metrics = Arc::new(MetricsRegistry::new());
        let engine = ThroughputEngine::with_sink(workers, 8, SinkHandle::new(metrics.clone()));
        let report = engine.run(&jobs).unwrap();
        let snap = metrics.snapshot();

        // Job lifecycle: every job started and completed exactly once.
        prop_assert_eq!(snap.jobs_started, jobs.len() as u64);
        prop_assert_eq!(snap.jobs_completed, jobs.len() as u64);

        // Characters and matches: exactly the ground truth.
        let truth_chars: u64 = jobs.iter().map(|j| j.text.len() as u64).sum();
        let truth_matches: u64 = jobs
            .iter()
            .map(|j| match_spec(&j.text, &j.pattern).iter().filter(|&&b| b).count() as u64)
            .sum();
        prop_assert_eq!(snap.chars, truth_chars);
        prop_assert_eq!(snap.matches, truth_matches);

        // Batch accounting agrees with the counters module's view.
        prop_assert_eq!(snap.batches, report.totals.batches);
        prop_assert_eq!(snap.lane_slots_used, report.totals.lane_slots_used);
        prop_assert_eq!(snap.lane_slots_total, report.totals.lane_slots_total);
        prop_assert_eq!(snap.cache_hits, report.totals.cache_hits);
        prop_assert_eq!(snap.cache_misses, report.totals.cache_misses);

        // The occupancy histogram saw every batch, and its sum is the
        // filled-lane total.
        prop_assert_eq!(snap.batch_occupancy.count, report.totals.batches);
        prop_assert_eq!(snap.batch_occupancy.sum, report.totals.lane_slots_used);
    }
}
