//! Chaos properties: under arbitrary seeded fault campaigns — lane
//! upsets, stuck comparators, cache poisoning, stalls, panics, and
//! failing recovery rungs — the resilient scheduler's committed output
//! is bit-identical to the scalar specification, and every run
//! terminates inside a bounded wall clock (no deadlock, no livelock).
//!
//! The campaign seed folds in `PM_CHAOS_SEED` when set, so the CI seed
//! matrix replays distinct deterministic campaigns and any failure
//! reproduces locally with the same environment variable.

use pm_chip::faults::{FaultPlan, PlaneFault};
use pm_chip::throughput::{Job, ResiliencePolicy, SuperWidth, ThroughputEngine};
use pm_systolic::prelude::*;
use proptest::prelude::*;
use std::time::{Duration, Instant};

/// A pattern pool and a job list of (pool index, text) pairs — the
/// same ragged multi-pattern shape as the fault-free scheduler props.
type JobWorkload = (Vec<Vec<Option<u8>>>, Vec<(usize, Vec<u8>)>);

fn job_workload() -> impl Strategy<Value = JobWorkload> {
    let pat_sym = prop_oneof![
        4 => (0u8..=3).prop_map(Some),
        1 => Just(None), // wild card
    ];
    let pool = proptest::collection::vec(proptest::collection::vec(pat_sym, 1..=8), 1..=4);
    pool.prop_flat_map(|pool| {
        let picks = pool.len();
        (
            Just(pool),
            proptest::collection::vec(
                (0..picks, proptest::collection::vec(0u8..=3, 0..=30)),
                0..=60,
            ),
        )
    })
}

fn build(pat: &[Option<u8>]) -> Pattern {
    let syms: Vec<PatSym> = pat
        .iter()
        .map(|o| match o {
            Some(v) => PatSym::Lit(Symbol::new(*v)),
            None => PatSym::Wild,
        })
        .collect();
    Pattern::new(syms, Alphabet::TWO_BIT).unwrap()
}

fn jobs_from(pool: &[Vec<Option<u8>>], specs: &[(usize, Vec<u8>)]) -> Vec<Job> {
    let patterns: Vec<Pattern> = pool.iter().map(|p| build(p)).collect();
    specs
        .iter()
        .enumerate()
        .map(|(id, (pick, text))| {
            let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
            Job::new(id as u64, patterns[*pick].clone(), symbols)
        })
        .collect()
}

/// The CI seed-matrix contribution: campaigns differ per matrix entry
/// but stay deterministic within one.
fn env_seed() -> u64 {
    std::env::var("PM_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// A generous per-case bound: a hung scheduler (lost worker, deadlocked
/// queue, unbounded retry loop) blows straight through it.
const CASE_BUDGET: Duration = Duration::from_secs(30);

fn check_resilient(jobs: &[Job], plan: FaultPlan, workers: usize, width: SuperWidth) {
    let seed = plan.seed();
    let mut engine = ThroughputEngine::new(workers, 8);
    engine.set_width(width);
    engine.set_resilience(Some(ResiliencePolicy::default()));
    engine.set_fault_plan(Some(plan));
    let started = Instant::now();
    let report = engine.run(jobs).expect("resilient runs contain faults");
    assert!(
        started.elapsed() < CASE_BUDGET,
        "run exceeded the {CASE_BUDGET:?} liveness budget"
    );
    assert_eq!(report.outputs.len(), jobs.len());
    for (job, out) in jobs.iter().zip(&report.outputs) {
        assert_eq!(out.id, job.id);
        assert_eq!(
            out.hits.bits(),
            match_spec(&job.text, &job.pattern),
            "job {} diverged from spec under seed {seed}",
            job.id
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn resilient_scheduler_equals_spec_under_random_faults(
        (pool, specs) in job_workload(),
        seed in 0u64..1_000_000,
        permille in 0u32..=1000,
        onset in 0u64..4,
        rung_permille in 0u32..=400,
        workers in 1usize..4,
    ) {
        let jobs = jobs_from(&pool, &specs);
        // Short stalls: liveness faults must slow the run, not the
        // suite (the watchdog path has its own wall-clock test).
        let plan = FaultPlan::new(seed ^ env_seed())
            .with_worker_fault_permille(permille)
            .with_max_onset_batches(onset)
            .with_rung_fail_permille(rung_permille)
            .with_stall_millis(2);
        check_resilient(&jobs, plan, workers, SuperWidth::W8);
    }

    #[test]
    fn resilient_scheduler_equals_spec_at_every_width(
        (pool, specs) in job_workload(),
        seed in 0u64..1_000_000,
    ) {
        let jobs = jobs_from(&pool, &specs);
        for width in [SuperWidth::W1, SuperWidth::W4, SuperWidth::W8] {
            let plan = FaultPlan::new(seed ^ env_seed())
                .with_worker_fault_permille(600)
                .with_stall_millis(2);
            check_resilient(&jobs, plan, 2, width);
        }
    }
}

#[test]
fn all_workers_condemned_and_all_rungs_failing_lands_on_software() {
    // The deepest path the ladder has: every worker defective from its
    // first batch, every hardware recovery rung failing — the run must
    // still terminate with spec-identical output, carried entirely by
    // the software fallback.
    let pool: Vec<Vec<Option<u8>>> = vec![vec![Some(0), None, Some(2)], vec![Some(1), Some(1)]];
    let specs: Vec<(usize, Vec<u8>)> = (0..40u8)
        .map(|i| {
            (
                usize::from(i % 2),
                (0..20).map(|j| (i.wrapping_add(j)) % 4).collect(),
            )
        })
        .collect();
    let jobs = jobs_from(&pool, &specs);
    let mut engine = ThroughputEngine::new(3, 8);
    engine.set_resilience(Some(ResiliencePolicy::default()));
    engine.set_fault_plan(Some(
        FaultPlan::new(1980 ^ env_seed())
            .with_worker_fault_permille(1000)
            .with_forced_kind(PlaneFault::StuckComparator { level: true })
            .with_max_onset_batches(0)
            .with_rung_fail_permille(1000),
    ));
    let started = Instant::now();
    let report = engine.run(&jobs).unwrap();
    assert!(started.elapsed() < CASE_BUDGET);
    for (job, out) in jobs.iter().zip(&report.outputs) {
        assert_eq!(out.hits.bits(), match_spec(&job.text, &job.pattern));
    }
    let res = report.resilience.expect("resilient run reports");
    // Every worker that executed a batch is condemned (idle workers
    // have nothing to void); with every rung failing, every job lands
    // on the software rung.
    assert!(!res.quarantined.is_empty());
    assert_eq!(res.fallback_jobs, jobs.len() as u64);
    assert!(res.demotions > 0);
}

#[test]
fn chaos_campaign_is_deterministic_for_a_fixed_seed() {
    let pool: Vec<Vec<Option<u8>>> = vec![vec![Some(0), Some(1)], vec![Some(2), None]];
    let specs: Vec<(usize, Vec<u8>)> = (0..30u8)
        .map(|i| (usize::from(i % 2), (0..15).map(|j| (i ^ j) % 4).collect()))
        .collect();
    let jobs = jobs_from(&pool, &specs);
    let run = || {
        let mut engine = ThroughputEngine::new(2, 8);
        engine.set_resilience(Some(ResiliencePolicy::default()));
        engine.set_fault_plan(Some(
            FaultPlan::new(42)
                .with_worker_fault_permille(1000)
                .with_forced_kind(PlaneFault::LaneUpset)
                .with_max_onset_batches(0)
                .with_rung_fail_permille(0),
        ));
        let report = engine.run(&jobs).unwrap();
        let res = report.resilience.unwrap();
        (res.quarantined, res.recovered_jobs, res.fallback_jobs)
    };
    assert_eq!(run(), run(), "equal seeds must replay identical campaigns");
}
