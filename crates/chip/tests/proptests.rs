//! Property tests: cascades and multi-pass runs agree with the spec on
//! arbitrary workloads.

use pm_chip::prelude::*;
use pm_systolic::prelude::*;
use proptest::prelude::*;

fn workload() -> impl Strategy<Value = (Vec<Option<u8>>, Vec<u8>)> {
    let pat_sym = prop_oneof![
        4 => (0u8..=3).prop_map(Some),
        1 => Just(None),
    ];
    (
        proptest::collection::vec(pat_sym, 1..=10),
        proptest::collection::vec(0u8..=3, 0..=40),
    )
}

fn build(pat: &[Option<u8>]) -> Pattern {
    let syms: Vec<PatSym> = pat
        .iter()
        .map(|o| match o {
            Some(v) => PatSym::Lit(Symbol::new(*v)),
            None => PatSym::Wild,
        })
        .collect();
    Pattern::new(syms, Alphabet::TWO_BIT).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn multipass_equals_spec((pat, text) in workload(), cells in 1usize..6) {
        let pattern = build(&pat);
        let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        let m = MultipassMatcher::new(&pattern, cells).unwrap();
        let got = m.match_symbols(&symbols);
        prop_assert_eq!(got.bits(), match_spec(&symbols, &pattern));
    }

    #[test]
    fn cascade_equals_spec((pat, text) in workload(), chips in 1usize..4, per in 1usize..5) {
        let pattern = build(&pat);
        prop_assume!(chips * per >= pattern.len());
        let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        let mut cascade = ChipCascade::new(&pattern, chips, per).unwrap();
        let got = cascade.match_symbols(&symbols);
        prop_assert_eq!(got.bits(), match_spec(&symbols, &pattern));
    }
}
