//! Property tests: cascades and multi-pass runs agree with the spec on
//! arbitrary workloads.

use pm_chip::prelude::*;
use pm_systolic::prelude::*;
use proptest::prelude::*;

fn workload() -> impl Strategy<Value = (Vec<Option<u8>>, Vec<u8>)> {
    let pat_sym = prop_oneof![
        4 => (0u8..=3).prop_map(Some),
        1 => Just(None),
    ];
    (
        proptest::collection::vec(pat_sym, 1..=10),
        proptest::collection::vec(0u8..=3, 0..=40),
    )
}

fn build(pat: &[Option<u8>]) -> Pattern {
    let syms: Vec<PatSym> = pat
        .iter()
        .map(|o| match o {
            Some(v) => PatSym::Lit(Symbol::new(*v)),
            None => PatSym::Wild,
        })
        .collect();
    Pattern::new(syms, Alphabet::TWO_BIT).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn multipass_equals_spec((pat, text) in workload(), cells in 1usize..6) {
        let pattern = build(&pat);
        let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        let m = MultipassMatcher::new(&pattern, cells).unwrap();
        let got = m.match_symbols(&symbols);
        prop_assert_eq!(got.bits(), match_spec(&symbols, &pattern));
    }

    #[test]
    fn cascade_equals_spec((pat, text) in workload(), chips in 1usize..4, per in 1usize..5) {
        let pattern = build(&pat);
        prop_assume!(chips * per >= pattern.len());
        let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        let mut cascade = ChipCascade::new(&pattern, chips, per).unwrap();
        let got = cascade.match_symbols(&symbols);
        prop_assert_eq!(got.bits(), match_spec(&symbols, &pattern));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// §5 harvest invariants: the serpentine chain threads *only*
    /// working cells, never skips more than the bypass budget inside a
    /// row, and accounts for every working cell as chained or stranded.
    #[test]
    fn harvest_accounts_for_every_working_cell(
        rows in 1usize..5,
        cols in 1usize..8,
        defects in proptest::collection::vec(0u8..=1, 0..40),
        max_bypass in 0usize..4,
    ) {
        let map: Vec<Vec<bool>> = (0..rows)
            .map(|r| (0..cols).map(|c| defects.get(r * cols + c).copied().unwrap_or(0) == 1).collect())
            .collect();
        let wafer = Wafer::from_defects(map);
        let harvest = wafer.harvest(max_bypass);

        for &(r, c) in &harvest.chain {
            prop_assert!(!wafer.is_defective(r, c), "chained a dead cell ({r},{c})");
        }
        let mut seen = std::collections::HashSet::new();
        for cell in &harvest.chain {
            prop_assert!(seen.insert(*cell), "cell {cell:?} chained twice");
        }
        prop_assert_eq!(
            harvest.chain.len() + harvest.stranded,
            wafer.working_cells(),
            "every working cell must be chained or stranded"
        );
        // Bypass budget: consecutive chained cells in one row are at
        // most max_bypass+1 columns apart.
        for pair in harvest.chain.windows(2) {
            let ((r1, c1), (r2, c2)) = (pair[0], pair[1]);
            if r1 == r2 {
                prop_assert!(
                    c1.abs_diff(c2) <= max_bypass + 1,
                    "row {r1}: jump {c1}->{c2} exceeds bypass {max_bypass}"
                );
            }
        }
        // More wiring slack never harvests fewer cells.
        let looser = wafer.harvest(max_bypass + 1);
        prop_assert!(looser.chain.len() >= harvest.chain.len());
    }

    /// Remap equivalence: a cascade that loses an arbitrary chip to an
    /// arbitrary stuck-at fault mid-stream still commits exactly the
    /// specification's result stream (via spare remap or, when the
    /// spare pool is too small, the software fallback).
    #[test]
    fn self_healing_stream_equals_spec(
        (pat, text) in workload(),
        chips in 2usize..4,
        per in 2usize..5,
        spares in 0usize..3,
        victim_seed in 0usize..16,
        kind in 0u8..5,
        cut in 0usize..40,
    ) {
        let pattern = build(&pat);
        prop_assume!(chips * per >= pattern.len());
        prop_assume!(!text.is_empty());
        let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
        let policy = RecoveryPolicy {
            scrub_interval_chars: 8,
            ..RecoveryPolicy::default()
        };
        let mut board =
            SelfHealingCascade::new(&pattern, chips, per, spares, policy).unwrap();
        let fault = match kind {
            0 => ChipFault::ResultStuck(true),
            1 => ChipFault::ResultStuck(false),
            2 => ChipFault::ResultDead,
            3 => ChipFault::TextStuck(0),
            _ => ChipFault::PatternStuck(3),
        };
        let cut = cut % symbols.len().max(1);
        let victim = victim_seed % (chips + spares);
        board.write_all(&symbols[..cut]).unwrap();
        board.inject_fault(victim, fault);
        board.write_all(&symbols[cut..]).unwrap();
        let got = board.finish().unwrap();
        prop_assert_eq!(got.bits(), match_spec(&symbols, &pattern));
    }
}
