//! Ingestion properties: the zero-copy path — a [`TextSource`] cut
//! into ragged chunks (1-byte included), streamed through the
//! [`OverlapChunker`] and routed across shards — must report exactly
//! the matches the offline scan and the Aho–Corasick oracle report, at
//! every superplane width, and must keep doing so when a seeded fault
//! campaign burns exactly one shard.

use pm_chip::faults::FaultPlan;
use pm_chip::ingest::{OverlapChunker, PagedCorpus, SliceSource, TextSource};
use pm_chip::shard::{Router, RouterConfig};
use pm_chip::throughput::{Job, JobRef, ResiliencePolicy, SuperWidth};
use pm_matchers::aho_corasick::{AhoCorasick, DictMatch};
use pm_systolic::prelude::*;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

const WIDTHS: [SuperWidth; 3] = [SuperWidth::W1, SuperWidth::W4, SuperWidth::W8];

fn build(pat: &[u8]) -> Pattern {
    let syms: Vec<PatSym> = pat.iter().map(|&v| PatSym::Lit(Symbol::new(v))).collect();
    Pattern::new(syms, Alphabet::TWO_BIT).unwrap()
}

fn symbols(text: &[u8]) -> Vec<Symbol> {
    text.iter().map(|&b| Symbol::new(b)).collect()
}

/// The scalar ground truth, one pattern at a time.
fn spec_events(pats: &[Pattern], text: &[Symbol]) -> Vec<DictMatch> {
    let mut events = Vec::new();
    for (id, p) in pats.iter().enumerate() {
        for (end, hit) in match_spec(text, p).iter().enumerate() {
            if *hit {
                events.push(DictMatch { pattern: id, end });
            }
        }
    }
    events.sort_unstable();
    events
}

/// Streams `source` through the chunker and routes every window's scan
/// regions across the router's shards as borrowed-slice jobs — the
/// full zero-copy ingestion path. Returns the merged event stream.
fn routed_stream_events(
    router: &Router,
    pats: &[Pattern],
    source: impl TextSource,
) -> Vec<DictMatch> {
    let kmax = pats.iter().map(Pattern::len).max().unwrap_or(1);
    let mut chunker = OverlapChunker::new(source, kmax);
    let mut events = Vec::new();
    while let Some(view) = chunker.next_window().unwrap() {
        // One job per (pattern, region); `meta` keeps the two-region
        // protocol's bookkeeping so outputs (submission order) can be
        // folded back to global offsets.
        let mut refs: Vec<JobRef<'_>> = Vec::new();
        let mut meta: Vec<(usize, usize, usize)> = Vec::new();
        for (slice, min_end, base) in view.regions() {
            if slice.is_empty() {
                continue;
            }
            for (id, pattern) in pats.iter().enumerate() {
                refs.push(JobRef {
                    id: refs.len() as u64,
                    pattern,
                    text: slice,
                });
                meta.push((id, min_end, base));
            }
        }
        let report = router.run_refs(&refs).unwrap();
        for (out, &(pattern, min_end, base)) in report.outputs.iter().zip(&meta) {
            for end in out.hits.ending_positions() {
                if end >= min_end {
                    events.push(DictMatch {
                        pattern,
                        end: base + end,
                    });
                }
            }
        }
    }
    events.sort_unstable();
    events
}

/// Arbitrary literal dictionaries (AC-comparable) + a text.
fn literal_workload() -> impl Strategy<Value = (Vec<Vec<u8>>, Vec<u8>)> {
    (
        proptest::collection::vec(proptest::collection::vec(0u8..=3, 1..=6), 1..=8),
        proptest::collection::vec(0u8..=3, 0..=80),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole equivalence: chunked ingestion through the shard
    /// router ≡ offline `find_all` ≡ the Aho–Corasick oracle, for
    /// ragged chunk sizes down to a single byte, at every width and
    /// shard count.
    #[test]
    fn chunked_router_ingestion_equals_offline_and_oracle(
        (dict, text) in literal_workload(),
        chunk in 1usize..=16,
        shards in 1usize..=3,
    ) {
        let pats: Vec<Pattern> = dict.iter().map(|p| build(p)).collect();
        let text = symbols(&text);
        let want = spec_events(&pats, &text);
        let oracle = AhoCorasick::new(&pats).unwrap();
        prop_assert_eq!(&oracle.find_all(&text), &want);
        for width in WIDTHS {
            let router = Router::new(RouterConfig {
                shards,
                workers_per_shard: 2,
                width,
                ..RouterConfig::default()
            });
            let got = routed_stream_events(&router, &pats, SliceSource::new(&text, chunk));
            prop_assert_eq!(
                &got, &want,
                "chunk={} shards={} width={}", chunk, shards, width.label()
            );
        }
    }

    /// One shard under a seeded fault campaign, siblings clean: the
    /// resilience ladder keeps the routed output spec-identical.
    #[test]
    fn chaos_on_one_shard_stays_spec_identical(
        (dict, text) in literal_workload(),
        seed in 0u64..1_000_000,
        permille in 0u32..=800,
        burned in 0usize..3,
    ) {
        let pats: Vec<Pattern> = dict.iter().map(|p| build(p)).collect();
        let text = symbols(&text);
        let jobs: Vec<Job> = pats
            .iter()
            .enumerate()
            .map(|(id, p)| Job::new(id as u64, p.clone(), text.clone()))
            .collect();
        let mut router = Router::new(RouterConfig {
            shards: 3,
            workers_per_shard: 2,
            width: SuperWidth::W8,
            ..RouterConfig::default()
        });
        router.set_resilience(Some(ResiliencePolicy::default()));
        router.shard_mut(burned).engine_mut().set_fault_plan(Some(
            FaultPlan::new(seed)
                .with_worker_fault_permille(permille)
                .with_max_onset_batches(2)
                .with_stall_millis(1),
        ));
        let report = router.run(&jobs).unwrap();
        prop_assert_eq!(report.outputs.len(), jobs.len());
        for (job, out) in jobs.iter().zip(&report.outputs) {
            prop_assert_eq!(out.id, job.id);
            prop_assert_eq!(
                out.hits.bits(),
                &match_spec(&text, &job.pattern)[..],
                "job {} diverged under seed {} on shard {}", job.id, seed, burned
            );
        }
    }

    /// File-backed ingestion: a corpus written to disk, read back
    /// through `PagedCorpus` pages and the chunker, must scan exactly
    /// like the in-memory slice — byte for byte and match for match.
    #[test]
    fn paged_corpus_streams_like_the_slice(
        text in proptest::collection::vec(0u8..=3, 0..=2000),
        pat in proptest::collection::vec(0u8..=3, 1..=5),
        page in 1usize..=512,
    ) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "pm_chip_ingest_props_{}_{}.bin",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&path, &text).unwrap();

        let pattern = build(&pat);
        let text = symbols(&text);
        let mut corpus = PagedCorpus::open(&path, page).unwrap();
        prop_assert_eq!(corpus.len_hint(), Some(text.len() as u64));

        // Byte stream identical to the slice source.
        let mut paged = Vec::new();
        while let Some(chunk) = corpus.next_chunk().unwrap() {
            paged.extend_from_slice(chunk);
        }
        prop_assert_eq!(&paged, &text);

        // Match stream identical to the offline scan.
        corpus.rewind();
        let offline: Vec<usize> = match_spec(&text, &pattern)
            .iter()
            .enumerate()
            .filter_map(|(i, hit)| hit.then_some(i))
            .collect();
        let mut chunker = OverlapChunker::new(corpus, pattern.len());
        let mut streamed = Vec::new();
        while let Some(view) = chunker.next_window().unwrap() {
            for (slice, min_end, base) in view.regions() {
                for (pos, hit) in match_spec(slice, &pattern).iter().enumerate() {
                    if *hit && pos >= min_end {
                        streamed.push(base + pos);
                    }
                }
            }
        }
        prop_assert_eq!(streamed, offline);
        std::fs::remove_file(&path).ok();
    }
}

/// The deterministic 1-byte worst case: every chunk is a single
/// symbol, so every multi-symbol match spans chunk boundaries — at
/// every width, through every shard count.
#[test]
fn single_byte_chunks_span_every_boundary() {
    let text: Vec<Symbol> = symbols(&[0, 1, 2, 0, 1, 2, 0, 1, 3, 0, 1, 2, 0, 1]);
    let pats = vec![build(&[0, 1, 2]), build(&[1, 2, 0, 1]), build(&[3])];
    let want = spec_events(&pats, &text);
    assert!(!want.is_empty(), "fixture must actually match");
    for shards in [1, 2, 4] {
        for width in WIDTHS {
            let router = Router::new(RouterConfig {
                shards,
                workers_per_shard: 2,
                width,
                ..RouterConfig::default()
            });
            let got = routed_stream_events(&router, &pats, SliceSource::new(&text, 1));
            assert_eq!(got, want, "shards={shards} width={}", width.label());
        }
    }
}
