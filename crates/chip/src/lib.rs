//! # pm-chip — the pattern matcher as a packaged part
//!
//! `pm-systolic` models the algorithm; this crate models the *chip*:
//!
//! * [`timing`] — the two-phase clock budget behind the paper's headline
//!   measurement, "the chip can achieve a data rate of one character
//!   every 250 ns, which is higher than the memory bandwidth of most
//!   conventional computers" (§1), and the corollary that the rate is
//!   independent of pattern length;
//! * [`pins`] — the pin budget that §3.4's extensibility argument
//!   implies ("more inputs and outputs must be provided"), checked
//!   against period packages;
//! * [`cascade`] — the five-chip matcher of Figure 3-7: `k` chips of
//!   `n` cells each matching patterns up to `kn` characters;
//! * [`multipass`] — matching patterns *longer* than the whole system
//!   by running the pattern through several times with the text delayed
//!   by `n` characters per run (§3.4);
//! * [`host`] — the peripheral-attachment model of Figure 1-1: a
//!   memory-mapped device with FIFOs and a match interrupt, as a host
//!   computer's driver would see it;
//! * [`wafer`] — §5's wafer-scale integration: defect maps,
//!   interconnect harvesting and the modularity yield dividend;
//! * [`bist`] — built-in self-test: the §4 production test program
//!   repackaged so a running system can re-verify a chip in the field;
//! * [`recovery`] — the self-healing cascade closing the
//!   detect → isolate → remap → resume loop over [`bist`], the
//!   [`wafer`] rewiring logic and a software fallback matcher;
//! * [`faults`] — the unified fault taxonomy and the seeded
//!   fault-injection plans ([`faults::FaultPlan`]) the chaos harness
//!   replays deterministically against the scheduler;
//! * [`throughput`] — the multi-stream job scheduler: N `(pattern,
//!   text)` jobs sharded across worker threads driving the bit-plane
//!   batch engine of `pm_systolic::batch`, with an LRU compiled-pattern
//!   cache, reporting through the [`counters`] module;
//! * [`shard`] — the memory system over [`throughput`]: each
//!   [`shard::Shard`] owns workers, caches and a resilience ladder
//!   over its slice of the lane budget, and the [`shard::Router`]
//!   admits jobs, spreads them across shards by load and pattern
//!   affinity, and merges results;
//! * [`ingest`] — zero-copy corpus ingestion: a paged `File` reader
//!   and a borrowed [`ingest::TextSource`] abstraction so batch
//!   drivers scan `&[Symbol]` slices instead of owned buffers, plus a
//!   streaming chunker carrying only the `kmax − 1` overlap tail;
//! * [`plan`] — the length-bucketing discipline shared by the batch,
//!   dictionary and router planners;
//! * [`telemetry`] — counters, fixed-bucket histograms and the
//!   Prometheus/JSON exporters built over the
//!   `pm_systolic::telemetry` trace-event taxonomy; the scheduler,
//!   host bus and recovery cascade all emit into it.

//! ```
//! use pm_chip::prelude::*;
//!
//! let clock = ClockModel::prototype();
//! assert!((clock.char_period_ns() - 250.0).abs() < 5.0);
//! let sheet = DataSheet::compile(8, 2);
//! assert_eq!(sheet.cascade_capacity(5), 40); // Figure 3-7
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bist;
pub mod cascade;
pub mod counters;
pub mod datasheet;
pub mod dictionary;
pub mod faults;
pub mod host;
pub mod ingest;
pub mod multipass;
pub mod pins;
pub mod plan;
pub mod recovery;
pub mod shard;
pub mod telemetry;
pub mod throughput;
pub mod timing;
pub mod wafer;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::bist::{BistFailure, BistOutcome, BistPort, BistProgram, BistVector};
    pub use crate::cascade::ChipCascade;
    pub use crate::counters::{CounterSnapshot, RateWindow, ThroughputCounters};
    pub use crate::datasheet::DataSheet;
    pub use crate::dictionary::{DictionaryMatcher, DictionaryStats, PatternDictionary};
    pub use crate::faults::{Fault, FaultPlan, PlaneFault, StickyFault, XorShift64};
    pub use crate::host::{DeviceState, HostBus, HostError, MatchEvent, RetryPolicy};
    pub use crate::ingest::{OverlapChunker, PagedCorpus, SliceSource, TextSource};
    pub use crate::multipass::MultipassMatcher;
    pub use crate::pins::{Package, PinBudget};
    pub use crate::recovery::{
        ChipFault, FaultError, Mode, RecoveryEvent, RecoveryPolicy, ResilientHostBus,
        SelfHealingCascade,
    };
    pub use crate::shard::{Router, RouterConfig, RouterReport, Shard};
    pub use crate::telemetry::{Histogram, HistogramSnapshot, MetricsRegistry, TelemetrySnapshot};
    pub use crate::throughput::{
        Job, JobOutput, JobRef, PatternCache, PatternIndex, ResiliencePolicy, ResilienceReport,
        SlotLease, SlotPool, SuperWidth, ThroughputEngine, WorkerStats,
    };
    pub use crate::timing::{ClockModel, GateDelays};
    pub use crate::wafer::{Wafer, YieldPoint};
}
