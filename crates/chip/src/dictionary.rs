//! Pattern dictionaries: compiling thousands of patterns into the
//! §3.4 chip farm.
//!
//! The paper's composition argument is that special-purpose matcher
//! chips cascade — many chips share one text bus, so a whole
//! *dictionary* of patterns is matched in a single streaming pass.
//! This module is that arrangement over the superplane engine:
//! [`PatternDictionary`] plans 10–10,000 patterns into
//! [`ResidentGroup`]s (the lane-resident "chips" of
//! `pm_systolic::resident`), and [`DictionaryMatcher`] streams text
//! chunks through every group once, merging per-group lane events into
//! a single `(pattern_id, end)` stream.
//!
//! The compilation pipeline:
//!
//! 1. **prefix-dedup trie** — patterns are interned in a trie keyed by
//!    pattern symbols (wild card = its own edge), so exact duplicates
//!    collapse onto one resident lane (their ids fan back out at event
//!    time) and the depth-first walk emits survivors in prefix-adjacent
//!    order;
//! 2. **length buckets** — survivors are stable-sorted by length via
//!    [`plan::bucket_by_len`](crate::plan::bucket_by_len), the same
//!    bucketing the throughput planner applies to mixed batches, so one
//!    long pattern can't inflate the `kmax` (and therefore the
//!    per-character cost) of every group it touches;
//! 3. **superplane groups** — the bucketed order is cut into groups of
//!    `width.lanes()` patterns, each compiled to a `ResidentGroup`
//!    whose acceptance table is built once and reused for every chunk.
//!
//! [`DictionaryStats`] reports what planning achieved — dedup ratio,
//! lane occupancy, prefix sharing — and
//! [`record_plan`](PatternDictionary::record_plan) exports the same
//! numbers as a [`TraceEvent::DictionaryPlanned`] telemetry event.
//! Benchmark E33 races the result against the Aho–Corasick software
//! baseline in `pm_matchers::aho_corasick`.
//!
//! ```
//! use pm_chip::dictionary::PatternDictionary;
//! use pm_chip::throughput::SuperWidth;
//! use pm_systolic::symbol::{text_from_letters, Pattern};
//!
//! let dict = PatternDictionary::new(
//!     &[
//!         Pattern::parse("ABC").unwrap(),
//!         Pattern::parse("BCA").unwrap(),
//!         Pattern::parse("ABC").unwrap(), // duplicate: shares a lane
//!     ],
//!     SuperWidth::W1,
//! );
//! assert_eq!(dict.stats().patterns, 3);
//! assert_eq!(dict.stats().resident, 2);
//!
//! let mut m = dict.matcher();
//! let text = text_from_letters("ABCA").unwrap();
//! let hits: Vec<(usize, usize)> =
//!     m.find_all(&text).iter().map(|h| (h.pattern, h.end)).collect();
//! // Both copies of "ABC" report at end 2; "BCA" at end 3.
//! assert_eq!(hits, vec![(0, 2), (2, 2), (1, 3)]);
//! ```

use crate::throughput::SuperWidth;
use pm_matchers::aho_corasick::DictMatch;
use pm_systolic::resident::ResidentGroup;
use pm_systolic::symbol::{PatSym, Pattern, Symbol};
use pm_systolic::telemetry::{SinkHandle, TraceEvent};
use std::collections::BTreeMap;

/// Trie edge key: a literal symbol value, or this for a wild card.
const WILD_KEY: u16 = u16::MAX;

/// What dictionary compilation achieved, for telemetry and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct DictionaryStats {
    /// Patterns submitted (distinct ids).
    pub patterns: usize,
    /// Distinct patterns left resident after dedup.
    pub resident: usize,
    /// Superplane groups planned.
    pub groups: usize,
    /// Lane slots across those groups (`groups × width.lanes()`).
    pub lane_slots: usize,
    /// Trie nodes below the root — the symbols actually stored.
    pub trie_nodes: usize,
    /// Symbols summed over all submitted patterns.
    pub pattern_symbols: usize,
}

impl DictionaryStats {
    /// Resident lanes per submitted pattern (1.0 = no duplicates,
    /// lower = the trie collapsed more).
    pub fn dedup_ratio(&self) -> f64 {
        if self.patterns == 0 {
            1.0
        } else {
            self.resident as f64 / self.patterns as f64
        }
    }

    /// Occupied fraction of the planned lane slots.
    pub fn occupancy(&self) -> f64 {
        if self.lane_slots == 0 {
            0.0
        } else {
            self.resident as f64 / self.lane_slots as f64
        }
    }

    /// Fraction of submitted symbols the trie absorbed into shared
    /// storage (0.0 = every symbol stored separately).
    pub fn prefix_sharing(&self) -> f64 {
        if self.pattern_symbols == 0 {
            0.0
        } else {
            1.0 - self.trie_nodes as f64 / self.pattern_symbols as f64
        }
    }
}

/// A planned multi-pattern dictionary: submitted patterns, the
/// deduped resident order, and the group cut — everything needed to
/// build a [`DictionaryMatcher`].
///
/// Pattern *ids* are the indices into the slice given to
/// [`new`](Self::new); match events report those ids, so duplicates
/// are transparent to the caller.
#[derive(Debug, Clone)]
pub struct PatternDictionary {
    width: SuperWidth,
    /// Representative pattern per resident lane, in planned order.
    residents: Vec<Pattern>,
    /// Submitted ids behind each resident lane (first id is the
    /// representative's own).
    ids_of: Vec<Vec<u32>>,
    stats: DictionaryStats,
}

impl PatternDictionary {
    /// Plans `patterns` into resident groups of the given superplane
    /// width. Accepts any count (including zero — an empty dictionary
    /// matches nothing); wild cards are fine, they simply intern as
    /// their own trie edge.
    pub fn new(patterns: &[Pattern], width: SuperWidth) -> Self {
        // 1. Prefix-dedup trie. Nodes are BTreeMaps so the DFS below
        //    is deterministic and prefix-adjacent.
        let mut children: Vec<BTreeMap<u16, usize>> = vec![BTreeMap::new()];
        let mut terminals: Vec<Vec<u32>> = vec![Vec::new()];
        let mut pattern_symbols = 0usize;
        for (id, p) in patterns.iter().enumerate() {
            pattern_symbols += p.len();
            let mut node = 0usize;
            for sym in p.symbols() {
                let key = match sym {
                    PatSym::Wild => WILD_KEY,
                    PatSym::Lit(s) => u16::from(s.value()),
                };
                node = match children[node].get(&key) {
                    Some(&next) => next,
                    None => {
                        let next = children.len();
                        children.push(BTreeMap::new());
                        terminals.push(Vec::new());
                        children[node].insert(key, next);
                        next
                    }
                };
            }
            terminals[node].push(id as u32);
        }

        // 2. DFS emits survivors prefix-adjacent; stable length sort
        //    then buckets them without destroying that adjacency.
        let mut order: Vec<usize> = Vec::new(); // trie node per survivor
        let mut stack = vec![0usize];
        while let Some(node) = stack.pop() {
            if !terminals[node].is_empty() {
                order.push(node);
            }
            // Reverse so the smallest edge is popped (visited) first.
            stack.extend(children[node].values().rev());
        }
        let mut survivors: Vec<(Pattern, Vec<u32>)> = order
            .into_iter()
            .map(|node| {
                let ids = std::mem::take(&mut terminals[node]);
                (patterns[ids[0] as usize].clone(), ids)
            })
            .collect();
        crate::plan::bucket_by_len(&mut survivors, |(p, _)| p.len());

        // 3. The group cut is implicit: resident lane l lives in group
        //    l / width.lanes(). Stats summarise the plan.
        let resident = survivors.len();
        let groups = resident.div_ceil(width.lanes());
        let stats = DictionaryStats {
            patterns: patterns.len(),
            resident,
            groups,
            lane_slots: groups * width.lanes(),
            trie_nodes: children.len() - 1,
            pattern_symbols,
        };
        let (residents, ids_of) = survivors.into_iter().unzip();
        PatternDictionary {
            width,
            residents,
            ids_of,
            stats,
        }
    }

    /// The planned superplane width.
    pub fn width(&self) -> SuperWidth {
        self.width
    }

    /// Submitted pattern count (the id space of match events).
    pub fn pattern_count(&self) -> usize {
        self.stats.patterns
    }

    /// What planning achieved.
    pub fn stats(&self) -> &DictionaryStats {
        &self.stats
    }

    /// Emits the plan as a [`TraceEvent::DictionaryPlanned`] event so a
    /// metrics registry can fold it into the `pm_dict_*` counters.
    pub fn record_plan(&self, sink: &SinkHandle) {
        sink.record(TraceEvent::DictionaryPlanned {
            patterns: self.stats.patterns as u64,
            resident: self.stats.resident as u64,
            groups: self.stats.groups as u32,
            lane_slots: self.stats.lane_slots as u64,
        });
    }

    /// Compiles the plan into a streaming matcher. Group acceptance
    /// tables are built here, once; the matcher reuses them for every
    /// chunk it is fed.
    pub fn matcher(&self) -> DictionaryMatcher {
        let span = self.width.lanes();
        let chunks = self.residents.chunks(span);
        let groups = match self.width {
            SuperWidth::W1 => Farm::W1(chunks.map(compile_group).collect()),
            SuperWidth::W4 => Farm::W4(chunks.map(compile_group).collect()),
            SuperWidth::W8 => Farm::W8(chunks.map(compile_group).collect()),
        };
        let kmax = self.residents.iter().map(|p| p.len()).max().unwrap_or(0);
        DictionaryMatcher {
            groups,
            ids_of: self.ids_of.clone(),
            span,
            kmax,
            tail: Vec::new(),
            seen: 0,
        }
    }
}

/// Builds one resident group; the plan guarantees the chunk fits.
fn compile_group<const W: usize>(chunk: &[Pattern]) -> ResidentGroup<W> {
    ResidentGroup::new(chunk).expect("planned group exceeds its own width")
}

/// The compiled farm: one vector of resident groups at the planned
/// width. A runtime-width wrapper over the const-generic kernel.
#[derive(Debug, Clone)]
enum Farm {
    W1(Vec<ResidentGroup<1>>),
    W4(Vec<ResidentGroup<4>>),
    W8(Vec<ResidentGroup<8>>),
}

/// Streams text through every resident group of a
/// [`PatternDictionary`] and merges the per-group lane events into one
/// ordered `(pattern_id, end)` stream.
///
/// Two modes: [`find_all`](Self::find_all) for a complete text, and
/// [`feed`](Self::feed) for chunked streaming — the matcher carries the
/// `kmax − 1` symbol overlap between chunks itself, so matches that
/// straddle a chunk boundary (or span several chunks) are still
/// reported exactly once, at their global end offset.
///
/// ```
/// use pm_chip::dictionary::PatternDictionary;
/// use pm_chip::throughput::SuperWidth;
/// use pm_systolic::symbol::{text_from_letters, Pattern};
///
/// let dict = PatternDictionary::new(
///     &[Pattern::parse("CAB").unwrap(), Pattern::parse("AB").unwrap()],
///     SuperWidth::W4,
/// );
/// let mut m = dict.matcher();
/// let text = text_from_letters("ABCABA").unwrap();
///
/// // Feeding in 2-symbol chunks still finds "CAB" across the cut:
/// let mut streamed = Vec::new();
/// for chunk in text.chunks(2) {
///     streamed.extend(m.feed(chunk));
/// }
/// assert_eq!(streamed, m.find_all(&text));
/// assert_eq!(
///     streamed.iter().map(|h| (h.pattern, h.end)).collect::<Vec<_>>(),
///     vec![(1, 1), (0, 4), (1, 4)],
/// );
/// ```
#[derive(Debug, Clone)]
pub struct DictionaryMatcher {
    groups: Farm,
    /// Submitted ids fanned out per resident lane.
    ids_of: Vec<Vec<u32>>,
    /// Lane slots per group (`width.lanes()`).
    span: usize,
    /// Longest resident pattern; `kmax − 1` symbols of overlap carry
    /// between chunks.
    kmax: usize,
    /// Carried overlap: the last `kmax − 1` symbols already consumed.
    tail: Vec<Symbol>,
    /// Symbols consumed before the next [`feed`](Self::feed) chunk.
    seen: usize,
}

impl DictionaryMatcher {
    /// Matches a complete text in one pass, independent of any
    /// streaming state. Events are ordered by `(end, pattern)`.
    pub fn find_all(&self, text: &[Symbol]) -> Vec<DictMatch> {
        self.scan_window(text, 0, 0)
    }

    /// Consumes the next chunk of a streamed text and returns the
    /// events whose match window *ends* inside it (offsets are global
    /// across all chunks fed so far). Chunks may be any size, including
    /// shorter than the longest pattern.
    ///
    /// Per-chunk allocation is O(`kmax`), not O(chunk): with no carried
    /// tail the caller's slice is scanned in place, and with one only a
    /// boundary window of at most `2·(kmax − 1)` symbols is
    /// materialised before the rest of the chunk is again scanned
    /// borrowed.
    pub fn feed(&mut self, chunk: &[Symbol]) -> Vec<DictMatch> {
        if self.kmax == 0 {
            self.seen += chunk.len();
            return Vec::new();
        }
        let carry = self.tail.len();
        let overlap = self.kmax - 1;
        let events = if carry == 0 {
            self.scan_window(chunk, 0, self.seen)
        } else {
            // Boundary window: the carried tail plus just enough of the
            // chunk to finish any match that straddles the cut.
            let head = chunk.len().min(overlap);
            let mut window = Vec::with_capacity(carry + head);
            window.extend_from_slice(&self.tail);
            window.extend_from_slice(&chunk[..head]);
            let mut events = self.scan_window(&window, carry, self.seen - carry);
            if head < chunk.len() {
                // Matches ending past the overlap lie wholly inside the
                // chunk; scan the slice directly, skipping the prefix
                // the boundary window already reported. Both halves are
                // (end, pattern)-sorted and the end ranges are disjoint
                // and ordered, so extending keeps the merged order.
                events.extend(self.scan_window(chunk, head, self.seen));
            }
            events
        };
        self.seen += chunk.len();
        // Retain the kmax − 1 overlap without copying the whole chunk:
        // either the chunk covers it, or the old tail's suffix tops it
        // up.
        if chunk.len() >= overlap {
            self.tail.clear();
            self.tail.extend_from_slice(&chunk[chunk.len() - overlap..]);
        } else {
            let keep_old = (carry + chunk.len()).min(overlap) - chunk.len();
            self.tail.drain(..carry - keep_old);
            self.tail.extend_from_slice(chunk);
        }
        events
    }

    /// Forgets all streaming state, ready for a fresh text.
    pub fn reset(&mut self) {
        self.tail.clear();
        self.seen = 0;
    }

    /// Total symbols consumed via [`feed`](Self::feed) since the last
    /// [`reset`](Self::reset).
    pub fn consumed(&self) -> usize {
        self.seen
    }

    /// Resident groups in the farm.
    pub fn group_count(&self) -> usize {
        match &self.groups {
            Farm::W1(g) => g.len(),
            Farm::W4(g) => g.len(),
            Farm::W8(g) => g.len(),
        }
    }

    /// Scans `window` through every group, keeping events ending at or
    /// after `min_pos`, reported at `base + position`, merged and
    /// sorted by `(end, pattern)`.
    fn scan_window(&self, window: &[Symbol], min_pos: usize, base: usize) -> Vec<DictMatch> {
        let mut events = Vec::new();
        match &self.groups {
            Farm::W1(g) => scan_farm(g, self, window, min_pos, base, &mut events),
            Farm::W4(g) => scan_farm(g, self, window, min_pos, base, &mut events),
            Farm::W8(g) => scan_farm(g, self, window, min_pos, base, &mut events),
        }
        events.sort_unstable();
        events
    }
}

/// One farm pass at a concrete width: every group scans the same
/// window (the shared text bus of §3.4), lane hits fan back out to
/// submitted pattern ids.
fn scan_farm<const W: usize>(
    groups: &[ResidentGroup<W>],
    m: &DictionaryMatcher,
    window: &[Symbol],
    min_pos: usize,
    base: usize,
    events: &mut Vec<DictMatch>,
) {
    for (g, group) in groups.iter().enumerate() {
        for (pos, lane) in group.scan(window) {
            if pos < min_pos {
                continue; // already reported by the previous chunk
            }
            for &id in &m.ids_of[g * m.span + lane] {
                events.push(DictMatch {
                    pattern: id as usize,
                    end: base + pos,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::text_from_letters;
    use pm_systolic::telemetry::MemorySink;
    use std::sync::Arc;

    fn letters(s: &str) -> Vec<Symbol> {
        text_from_letters(s).unwrap()
    }

    fn patterns(specs: &[&str]) -> Vec<Pattern> {
        specs.iter().map(|s| Pattern::parse(s).unwrap()).collect()
    }

    /// Spec-derived `(pattern, end)` events for a dictionary.
    fn spec_events(pats: &[Pattern], text: &[Symbol]) -> Vec<DictMatch> {
        let mut events = Vec::new();
        for (id, p) in pats.iter().enumerate() {
            for (end, hit) in match_spec(text, p).iter().enumerate() {
                if *hit {
                    events.push(DictMatch { pattern: id, end });
                }
            }
        }
        events.sort_unstable();
        events
    }

    #[test]
    fn planning_dedups_and_buckets() {
        let pats = patterns(&["ABCA", "AB", "ABCA", "XX", "ABCB", "AB"]);
        let dict = PatternDictionary::new(&pats, SuperWidth::W1);
        let s = dict.stats();
        assert_eq!(s.patterns, 6);
        assert_eq!(s.resident, 4); // ABCA, AB, XX, ABCB
        assert_eq!(s.groups, 1);
        assert_eq!(s.lane_slots, 64);
        // Shared prefixes: ABCA/ABCB share "ABC", AB is a prefix of it.
        // Trie stores A,B,C,A,B (5) + X,X (2) = 7 of 18 symbols.
        assert_eq!(s.trie_nodes, 7);
        assert_eq!(s.pattern_symbols, 18);
        assert!(s.dedup_ratio() < 0.7);
        assert!(s.prefix_sharing() > 0.6);
    }

    #[test]
    fn duplicate_ids_fan_out_and_buckets_are_stable() {
        let pats = patterns(&["ABCA", "AB", "ABCA"]);
        let dict = PatternDictionary::new(&pats, SuperWidth::W1);
        let text = letters("ABCAB");
        let events = dict.matcher().find_all(&text);
        assert_eq!(events, spec_events(&pats, &text));
        // Both ids 0 and 2 fire at end 3.
        assert!(events.contains(&DictMatch { pattern: 0, end: 3 }));
        assert!(events.contains(&DictMatch { pattern: 2, end: 3 }));
    }

    #[test]
    fn multi_group_dictionary_equals_spec() {
        // 150 distinct patterns on W1: three groups of 64 lanes.
        let pats: Vec<Pattern> = (0..150u32)
            .map(|i| {
                let letters = ["A", "B", "C", "D"];
                let s: String = (0..3 + (i % 4))
                    .map(|j| letters[((i / 4u32.pow(j)) % 4) as usize])
                    .collect();
                Pattern::parse(&s).unwrap()
            })
            .collect();
        let dict = PatternDictionary::new(&pats, SuperWidth::W1);
        assert!(dict.stats().groups >= 2);
        let text = letters("ABCDDCBAABCDABCDDDAABBCCDD");
        assert_eq!(dict.matcher().find_all(&text), spec_events(&pats, &text));
    }

    #[test]
    fn chunked_feed_matches_find_all_at_every_width() {
        let pats = patterns(&["ABCABC", "CAB", "BX", "AAAA"]);
        let text = letters("ABCABCABCAAAABCABBA");
        for width in [SuperWidth::W1, SuperWidth::W4, SuperWidth::W8] {
            let dict = PatternDictionary::new(&pats, width);
            let whole = dict.matcher().find_all(&text);
            assert_eq!(whole, spec_events(&pats, &text), "{}", width.label());
            for chunk_len in [1, 2, 3, 5, 19] {
                let mut m = dict.matcher();
                let mut streamed = Vec::new();
                for chunk in text.chunks(chunk_len) {
                    streamed.extend(m.feed(chunk));
                }
                assert_eq!(streamed, whole, "{} chunk={chunk_len}", width.label());
                assert_eq!(m.consumed(), text.len());
                m.reset();
                assert_eq!(m.consumed(), 0);
                assert_eq!(m.feed(&text), whole, "after reset");
            }
        }
    }

    #[test]
    fn feed_state_stays_bounded_by_kmax() {
        let pats = patterns(&["ABCAB", "BC"]);
        let dict = PatternDictionary::new(&pats, SuperWidth::W1);
        let mut m = dict.matcher();
        let kmax = 5;
        // One huge chunk, then ragged little ones: the carried tail and
        // its backing allocation must stay O(kmax), never O(chunk).
        let big: Vec<Symbol> = letters("ABCAB").repeat(4000);
        m.feed(&big);
        assert_eq!(m.tail.len(), kmax - 1);
        assert!(m.tail.capacity() < 4 * kmax, "tail grew with the chunk");
        for chunk_len in [1, 2, 3, 7] {
            for chunk in big.chunks(chunk_len) {
                m.feed(chunk);
                assert!(m.tail.len() < kmax);
                assert!(m.tail.capacity() < 4 * kmax);
            }
        }
    }

    #[test]
    fn empty_dictionary_matches_nothing() {
        let dict = PatternDictionary::new(&[], SuperWidth::W4);
        assert_eq!(dict.stats().resident, 0);
        assert_eq!(dict.stats().groups, 0);
        let mut m = dict.matcher();
        assert_eq!(m.group_count(), 0);
        assert!(m.feed(&letters("ABC")).is_empty());
        assert!(m.find_all(&letters("ABC")).is_empty());
    }

    #[test]
    fn record_plan_reaches_the_sink() {
        let sink = Arc::new(MemorySink::new());
        let handle = SinkHandle::new(sink.clone());
        let pats = patterns(&["AB", "AB", "BC"]);
        PatternDictionary::new(&pats, SuperWidth::W8).record_plan(&handle);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            TraceEvent::DictionaryPlanned {
                patterns: 3,
                resident: 2,
                groups: 1,
                lane_slots: 512,
            }
        ));
    }
}
