//! Zero-copy corpus ingestion: borrowed text sources, a paged `File`
//! reader, and a streaming chunker with exact boundary overlap.
//!
//! The paper's architecture is I/O-bound on purpose — §1's "one
//! character every 250 ns" is *faster than the memory bandwidth of
//! most conventional computers*, so the practical ceiling is how fast
//! the host can feed the array. The reproduction hit the same wall:
//! the superplane kernels already scan borrowed `&[Symbol]` slices,
//! but every byte still arrived as an owned `Vec` built per job. This
//! module closes the gap on the host side:
//!
//! * [`TextSource`] — a lending-iterator abstraction: `next_chunk`
//!   returns a slice *borrowed from the source*, so downstream batch
//!   drivers ([`ThroughputEngine::run_refs`], the
//!   [`Router`](crate::shard::Router)) never take ownership of text;
//! * [`SliceSource`] — an in-memory corpus cut into fixed chunks,
//!   the zero-cost case and the differential twin of the file reader;
//! * [`PagedCorpus`] — a `File` read into one reused page buffer via
//!   positional reads (`read_at` on Unix, seek-and-read elsewhere):
//!   std-only paging, no per-page allocation after the first;
//! * [`OverlapChunker`] — carries only the `kmax − 1` overlap tail
//!   between chunks — the same carry discipline as
//!   [`DictionaryMatcher::feed`](crate::dictionary::DictionaryMatcher::feed)
//!   — so matches spanning chunk boundaries are exact at every width
//!   while per-chunk state stays O(`kmax`), never O(chunk).
//!
//! ```
//! use pm_chip::ingest::{SliceSource, TextSource};
//! use pm_systolic::symbol::text_from_letters;
//!
//! let corpus = text_from_letters("ABCABCAB").unwrap();
//! let mut source = SliceSource::new(&corpus, 3);
//! let mut total = 0;
//! while let Some(chunk) = source.next_chunk().unwrap() {
//!     total += chunk.len();
//! }
//! assert_eq!(total, corpus.len());
//! ```
//!
//! [`ThroughputEngine::run_refs`]: crate::throughput::ThroughputEngine::run_refs

use pm_systolic::symbol::Symbol;
use std::fs::File;
use std::io;
use std::path::Path;

/// A stream of borrowed text chunks: the ingestion-side twin of the
/// kernels' borrowed-slice entry points.
///
/// `next_chunk` lends a slice valid until the next call, so a source
/// may (and [`PagedCorpus`] does) reuse one internal buffer for every
/// chunk — the caller scans in place and copies nothing.
pub trait TextSource {
    /// The next chunk, borrowed from the source's internal state, or
    /// `None` at end of stream. Chunks are non-empty.
    ///
    /// # Errors
    ///
    /// I/O failure of the underlying medium; in-memory sources never
    /// fail.
    fn next_chunk(&mut self) -> io::Result<Option<&[Symbol]>>;

    /// Total symbols this source will yield, when known up front —
    /// a sizing hint, not a contract.
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

/// An in-memory corpus served as successive fixed-size chunks, all
/// borrowed straight from the caller's slice.
#[derive(Debug)]
pub struct SliceSource<'a> {
    data: &'a [Symbol],
    chunk: usize,
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Cuts `data` into chunks of `chunk` symbols (at least one; the
    /// final chunk may be shorter).
    pub fn new(data: &'a [Symbol], chunk: usize) -> Self {
        SliceSource {
            data,
            chunk: chunk.max(1),
            pos: 0,
        }
    }
}

impl TextSource for SliceSource<'_> {
    fn next_chunk(&mut self) -> io::Result<Option<&[Symbol]>> {
        if self.pos >= self.data.len() {
            return Ok(None);
        }
        let end = (self.pos + self.chunk).min(self.data.len());
        let chunk = &self.data[self.pos..end];
        self.pos = end;
        Ok(Some(chunk))
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.data.len() as u64)
    }
}

/// A corpus file read page by page into one reused buffer.
///
/// Bytes map one-to-one onto the 8-bit alphabet's [`Symbol`]s, so any
/// file is a valid corpus. Reads are positional (`read_at` on Unix —
/// no shared cursor to contend on; a seek-and-read fallback elsewhere)
/// and the page buffer is allocated once, so steady-state ingestion
/// performs zero allocation per chunk.
#[derive(Debug)]
pub struct PagedCorpus {
    file: File,
    len: u64,
    offset: u64,
    raw: Vec<u8>,
    page: Vec<Symbol>,
}

impl PagedCorpus {
    /// Opens `path` for paged reading with pages of `page_bytes` (at
    /// least one).
    ///
    /// # Errors
    ///
    /// Whatever opening or stat-ing the file returns.
    pub fn open(path: impl AsRef<Path>, page_bytes: usize) -> io::Result<Self> {
        Self::from_file(File::open(path)?, page_bytes)
    }

    /// Wraps an already-open file.
    ///
    /// # Errors
    ///
    /// Whatever stat-ing the file returns.
    pub fn from_file(file: File, page_bytes: usize) -> io::Result<Self> {
        let len = file.metadata()?.len();
        Ok(PagedCorpus {
            file,
            len,
            offset: 0,
            raw: vec![0; page_bytes.max(1)],
            page: Vec::with_capacity(page_bytes.max(1)),
        })
    }

    /// Total bytes in the file.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes already consumed.
    pub fn consumed(&self) -> u64 {
        self.offset
    }

    /// Rewinds to the start of the file.
    pub fn rewind(&mut self) {
        self.offset = 0;
    }

    /// Fills `self.raw` from `self.offset`, returning the bytes read
    /// (0 at end of file; short only there).
    fn read_page(&mut self) -> io::Result<usize> {
        let mut filled = 0;
        while filled < self.raw.len() {
            let read = self.read_some(filled);
            match read {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(filled)
    }

    #[cfg(unix)]
    fn read_some(&mut self, filled: usize) -> io::Result<usize> {
        use std::os::unix::fs::FileExt;
        self.file
            .read_at(&mut self.raw[filled..], self.offset + filled as u64)
    }

    #[cfg(not(unix))]
    fn read_some(&mut self, filled: usize) -> io::Result<usize> {
        use std::io::{Read, Seek, SeekFrom};
        self.file
            .seek(SeekFrom::Start(self.offset + filled as u64))?;
        self.file.read(&mut self.raw[filled..])
    }
}

impl TextSource for PagedCorpus {
    fn next_chunk(&mut self) -> io::Result<Option<&[Symbol]>> {
        let n = self.read_page()?;
        if n == 0 {
            return Ok(None);
        }
        self.offset += n as u64;
        self.page.clear();
        self.page
            .extend(self.raw[..n].iter().map(|&b| Symbol::new(b)));
        Ok(Some(&self.page[..]))
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.len)
    }
}

/// One streamed window over a [`TextSource`], cut into at most two
/// scan regions so the consumer copies nothing but the overlap.
///
/// For each region `(slice, min_end, base)` from
/// [`regions`](Self::regions): scan `slice`, keep matches whose window
/// *ends* at position ≥ `min_end`, and report them at global offset
/// `base + position`. Together the regions report every match ending
/// inside the new chunk exactly once, including matches spanning the
/// chunk boundary.
#[derive(Debug, Clone, Copy)]
pub struct ChunkView<'a> {
    /// Carried tail plus the chunk's first `kmax − 1` symbols — the
    /// only copied bytes, at most `2·(kmax − 1)` of them. Empty before
    /// anything has been consumed.
    pub boundary: &'a [Symbol],
    /// Positions in `boundary` below this were reported by earlier
    /// windows.
    pub carry: usize,
    /// Global offset of `boundary[0]`.
    pub boundary_base: usize,
    /// The chunk itself, borrowed from the source.
    pub chunk: &'a [Symbol],
    /// Positions in `chunk` below this are covered by `boundary`.
    pub fresh_from: usize,
    /// Global offset of `chunk[0]`.
    pub chunk_base: usize,
}

impl<'a> ChunkView<'a> {
    /// The window's scan regions as `(slice, min_end, base)` triples.
    pub fn regions(&self) -> [(&'a [Symbol], usize, usize); 2] {
        [
            (self.boundary, self.carry, self.boundary_base),
            (self.chunk, self.fresh_from, self.chunk_base),
        ]
    }
}

/// Streams a [`TextSource`] in windows that overlap by `kmax − 1`
/// symbols — the carry discipline of
/// [`DictionaryMatcher::feed`](crate::dictionary::DictionaryMatcher::feed),
/// externalised for drivers that scan each chunk themselves (the
/// batch engines, the E36 ingest figure). State is the tail plus a
/// boundary scratch buffer: O(`kmax`) regardless of chunk size.
#[derive(Debug)]
pub struct OverlapChunker<S> {
    source: S,
    overlap: usize,
    tail: Vec<Symbol>,
    boundary: Vec<Symbol>,
    consumed: usize,
}

impl<S: TextSource> OverlapChunker<S> {
    /// Wraps `source` for patterns of at most `kmax` symbols.
    pub fn new(source: S, kmax: usize) -> Self {
        OverlapChunker {
            source,
            overlap: kmax.saturating_sub(1),
            tail: Vec::new(),
            boundary: Vec::new(),
            consumed: 0,
        }
    }

    /// Symbols consumed so far.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// The wrapped source's length hint.
    pub fn len_hint(&self) -> Option<u64> {
        self.source.len_hint()
    }

    /// The next window, or `None` when the source is exhausted.
    ///
    /// # Errors
    ///
    /// Propagated from the source.
    pub fn next_window(&mut self) -> io::Result<Option<ChunkView<'_>>> {
        let Some(chunk) = self.source.next_chunk()? else {
            return Ok(None);
        };
        let carry = self.tail.len();
        let head = chunk.len().min(self.overlap);
        self.boundary.clear();
        self.boundary.extend_from_slice(&self.tail);
        self.boundary.extend_from_slice(&chunk[..head]);
        // Advance the carried tail: either the chunk covers the whole
        // overlap, or the old tail's suffix tops it up.
        if chunk.len() >= self.overlap {
            self.tail.clear();
            self.tail
                .extend_from_slice(&chunk[chunk.len() - self.overlap..]);
        } else {
            let keep_old = (carry + chunk.len()).min(self.overlap) - chunk.len();
            self.tail.drain(..carry - keep_old);
            self.tail.extend_from_slice(chunk);
        }
        let view = ChunkView {
            boundary: &self.boundary,
            carry,
            boundary_base: self.consumed - carry,
            chunk,
            fresh_from: head,
            chunk_base: self.consumed,
        };
        self.consumed += chunk.len();
        Ok(Some(view))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::{text_from_letters, Pattern};
    use std::io::Write;

    fn letters(s: &str) -> Vec<Symbol> {
        text_from_letters(s).unwrap()
    }

    /// Ends-of-match for one pattern over a streamed source, via the
    /// chunker's two-region protocol.
    fn streamed_ends(source: impl TextSource, pattern: &Pattern) -> Vec<usize> {
        let mut chunker = OverlapChunker::new(source, pattern.len());
        let mut ends = Vec::new();
        while let Some(view) = chunker.next_window().unwrap() {
            for (slice, min_end, base) in view.regions() {
                for (pos, hit) in match_spec(slice, pattern).iter().enumerate() {
                    if *hit && pos >= min_end {
                        ends.push(base + pos);
                    }
                }
            }
        }
        ends
    }

    #[test]
    fn chunked_scan_equals_offline_at_ragged_sizes() {
        let text = letters("ABCABCABQABCCABCABABC");
        let pattern = Pattern::parse("ABCAB").unwrap();
        let offline: Vec<usize> = match_spec(&text, &pattern)
            .iter()
            .enumerate()
            .filter_map(|(i, hit)| hit.then_some(i))
            .collect();
        for chunk in [1, 2, 3, 4, 5, 7, 21, 50] {
            let streamed = streamed_ends(SliceSource::new(&text, chunk), &pattern);
            assert_eq!(streamed, offline, "chunk={chunk}");
        }
    }

    #[test]
    fn chunker_state_is_bounded_by_kmax() {
        let text = letters("AB").repeat(5000);
        let mut chunker = OverlapChunker::new(SliceSource::new(&text, 512), 6);
        while chunker.next_window().unwrap().is_some() {}
        assert_eq!(chunker.consumed(), text.len());
        assert!(chunker.tail.capacity() <= 16, "tail grew with the chunk");
        assert!(chunker.boundary.capacity() <= 16);
    }

    #[test]
    fn paged_corpus_equals_slice_source() {
        let dir = std::env::temp_dir().join("pm_chip_ingest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.bin");
        let bytes: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&bytes)
            .unwrap();

        let symbols: Vec<Symbol> = bytes.iter().map(|&b| Symbol::new(b)).collect();
        let mut corpus = PagedCorpus::open(&path, 777).unwrap();
        assert_eq!(corpus.len(), bytes.len() as u64);
        assert_eq!(corpus.len_hint(), Some(bytes.len() as u64));
        let mut paged = Vec::new();
        while let Some(chunk) = corpus.next_chunk().unwrap() {
            paged.extend_from_slice(chunk);
        }
        assert_eq!(paged, symbols);
        assert_eq!(corpus.consumed(), bytes.len() as u64);

        corpus.rewind();
        let again = corpus.next_chunk().unwrap().unwrap();
        assert_eq!(again, &symbols[..777]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_and_empty_slice_yield_nothing() {
        let dir = std::env::temp_dir().join("pm_chip_ingest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::File::create(&path).unwrap();
        let mut corpus = PagedCorpus::open(&path, 64).unwrap();
        assert!(corpus.is_empty());
        assert!(corpus.next_chunk().unwrap().is_none());
        let mut slice = SliceSource::new(&[], 8);
        assert!(slice.next_chunk().unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }
}
