//! The memory system: shards owning a slice of the machine, and the
//! router that feeds them.
//!
//! §1 sells the chip on outrunning "the memory bandwidth of most
//! conventional computers"; the scaled-up reproduction eventually hits
//! the software analogue — one [`ThroughputEngine`] whose workers all
//! contend on one pattern index, one slot pool and one planner. This
//! module splits the machine the way §3.4 splits the array:
//!
//! * a [`Shard`] is a self-contained slice of the lane budget — its
//!   own worker pool, work-stealing deques, two-tier pattern cache,
//!   resilience ladder and byte-budget [`SlotPool`]. A fault
//!   quarantines *inside* its shard; the others keep their width.
//! * the [`Router`] is the front of the memory system: it admits a
//!   batch of jobs, groups them by pattern (same-pattern jobs share
//!   compiled planes, so they belong together), routes each group to
//!   its *affinity shard* — a deterministic hash of the pattern, so
//!   repeat traffic re-hits warm caches — spilling to the least-loaded
//!   shard when affinity would overload one, runs every shard in
//!   parallel, and merges the reports back into submission order.
//!
//! Routing cost is accounted, not assumed: [`RouterReport`] carries
//! `route_micros` plus every shard's `plan_micros`, and
//! [`RouterReport::planner_overhead_frac`] is the gated ratio the E36
//! ingest benchmark holds below 5 % of batch wall-clock.
//!
//! ```
//! use pm_chip::shard::{Router, RouterConfig};
//! use pm_chip::throughput::Job;
//! use pm_systolic::symbol::{text_from_letters, Pattern};
//!
//! let router = Router::new(RouterConfig {
//!     shards: 2,
//!     workers_per_shard: 2,
//!     ..RouterConfig::default()
//! });
//! let text = text_from_letters("ABRACADABRA").unwrap();
//! let jobs = vec![Job::new(0, Pattern::parse("ABRA").unwrap(), text)];
//! let report = router.run(&jobs).unwrap();
//! assert_eq!(report.outputs.len(), 1);
//! assert_eq!(report.outputs[0].hits.ending_positions(), vec![3, 10]);
//! ```
//!
//! [`ThroughputEngine`]: crate::throughput::ThroughputEngine

use crate::throughput::{
    group_by_pattern, Job, JobOutput, JobRef, ResiliencePolicy, SlotPool, SuperWidth,
    ThroughputEngine, ThroughputReport,
};
use pm_systolic::error::Error;
use pm_systolic::symbol::Pattern;
use pm_systolic::telemetry::{SinkHandle, TraceEvent};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Shape of the sharded memory system.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Independent shards (each a full engine); at least 1.
    pub shards: usize,
    /// Worker threads per shard; at least 1.
    pub workers_per_shard: usize,
    /// Compiled-pattern cache capacity per shard worker.
    pub cache_capacity: usize,
    /// Total in-flight byte budget, split across shard slot pools.
    pub budget_bytes: u64,
    /// Superplane width every shard starts at.
    pub width: SuperWidth,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shards: 4,
            workers_per_shard: 4,
            cache_capacity: 256,
            budget_bytes: 8 << 20,
            width: SuperWidth::default(),
        }
    }
}

/// One slice of the machine: an engine plus the admission state the
/// router tracks for it.
#[derive(Debug)]
pub struct Shard {
    id: usize,
    engine: ThroughputEngine,
    pool: SlotPool,
    queue_depth: AtomicU64,
}

impl Shard {
    /// This shard's index within its router.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The shard's engine, for read-side inspection.
    pub fn engine(&self) -> &ThroughputEngine {
        &self.engine
    }

    /// The shard's engine, for configuration (width, faults, policy).
    pub fn engine_mut(&mut self) -> &mut ThroughputEngine {
        &mut self.engine
    }

    /// The shard's slice of the byte budget. [`SlotPool`] clones share
    /// state, so admission layers may hold their own handle.
    pub fn pool(&self) -> &SlotPool {
        &self.pool
    }

    /// Jobs admitted to this shard by the in-progress (or most recent)
    /// routing round; returns to 0 when the round completes.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }
}

/// The affinity hash: which shard a pattern's traffic prefers.
///
/// Plain `DefaultHasher` over the pattern — deterministic within a
/// process, which is all affinity needs (the property under test is
/// *stability*, so repeat traffic lands on warm caches).
fn pattern_shard(pattern: &Pattern) -> u64 {
    let mut h = DefaultHasher::new();
    pattern.hash(&mut h);
    h.finish()
}

/// The front of the memory system: admits jobs, balances them across
/// [`Shard`]s by load and pattern affinity, runs the shards in
/// parallel and merges results back into submission order.
#[derive(Debug)]
pub struct Router {
    shards: Vec<Shard>,
    sink: SinkHandle,
}

impl Router {
    /// A router with no trace sink.
    pub fn new(config: RouterConfig) -> Self {
        Self::with_sink(config, SinkHandle::null())
    }

    /// A router whose shards (and the router itself) emit trace events
    /// into `sink`.
    pub fn with_sink(config: RouterConfig, sink: SinkHandle) -> Self {
        let n = config.shards.max(1);
        let workers = config.workers_per_shard.max(1);
        // Split the byte budget exactly: the first `budget % n` shards
        // take one extra byte so the slices sum to the whole.
        let (base, extra) = (
            config.budget_bytes / n as u64,
            config.budget_bytes % n as u64,
        );
        let shards = (0..n)
            .map(|id| {
                let mut engine =
                    ThroughputEngine::with_sink(workers, config.cache_capacity, sink.clone());
                engine.set_width(config.width);
                let slice = base + u64::from((id as u64) < extra);
                Shard {
                    id,
                    engine,
                    pool: SlotPool::new(slice),
                    queue_depth: AtomicU64::new(0),
                }
            })
            .collect();
        Router { shards, sink }
    }

    /// All shards, in index order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// One shard by index.
    pub fn shard(&self, id: usize) -> &Shard {
        &self.shards[id]
    }

    /// One shard by index, mutably — the hook chaos tests use to arm a
    /// fault plan on a single shard.
    pub fn shard_mut(&mut self, id: usize) -> &mut Shard {
        &mut self.shards[id]
    }

    /// The shard a session or stream key pins to: stable for the key's
    /// lifetime, uniform across keys.
    pub fn shard_for(&self, key: u64) -> &Shard {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Installs (or clears) the same resilience policy on every shard.
    pub fn set_resilience(&mut self, policy: Option<ResiliencePolicy>) {
        for shard in &mut self.shards {
            shard.engine.set_resilience(policy);
        }
    }

    /// Total in-flight byte budget across all shard pools.
    pub fn capacity(&self) -> u64 {
        self.shards.iter().map(|s| s.pool.capacity()).sum()
    }

    /// Bytes currently leased across all shard pools.
    pub fn in_flight(&self) -> u64 {
        self.shards.iter().map(|s| s.pool.in_flight()).sum()
    }

    /// As [`run_refs`](Self::run_refs), over owned jobs.
    ///
    /// # Errors
    ///
    /// As [`run_refs`](Self::run_refs).
    pub fn run(&self, jobs: &[Job]) -> Result<RouterReport, Error> {
        let refs: Vec<JobRef<'_>> = jobs.iter().map(Job::to_ref).collect();
        self.run_refs(&refs)
    }

    /// Routes a batch across the shards, runs them in parallel, and
    /// merges the shard reports into one [`RouterReport`] whose
    /// `outputs` are in submission order.
    ///
    /// Routing is by pattern group: all jobs sharing a pattern go to
    /// the pattern's affinity shard unless that shard is already
    /// loaded past ~1.25× its fair share of characters, in which case
    /// the group spills to the least-loaded shard (counted in
    /// [`RouterReport::affinity_moves`]).
    ///
    /// # Errors
    ///
    /// A shard's error — e.g. [`Error::WorkerPanicked`] on the fast
    /// path, with `worker` carrying the *shard* index — after every
    /// shard thread has been joined.
    pub fn run_refs(&self, jobs: &[JobRef<'_>]) -> Result<RouterReport, Error> {
        let wall = Instant::now();
        let route_timer = Instant::now();
        let n = self.shards.len();

        let mut groups = group_by_pattern(jobs);
        // Bucket groups by pattern length so each shard's own planner
        // receives length-sorted singles — the shared discipline of
        // `plan::bucket_by_len` applied one level up.
        crate::plan::bucket_by_len(&mut groups, |(p, _)| p.len());
        let group_count = groups.len() as u64;

        let total_chars: usize = jobs.iter().map(|j| j.text.len()).sum();
        // Fair share plus 25 % headroom: affinity wins until a shard
        // would exceed it, then the group spills to the least loaded.
        let cap = total_chars / n + total_chars / (4 * n) + 1;
        let mut load = vec![0usize; n];
        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut moves = 0u64;
        for (pattern, members) in groups {
            let group_chars: usize = members.iter().map(|&i| jobs[i].text.len()).sum();
            let preferred = (pattern_shard(pattern) % n as u64) as usize;
            let target = if n > 1 && load[preferred] + group_chars > cap {
                let least = (0..n).min_by_key(|&s| load[s]).unwrap_or(preferred);
                if least != preferred {
                    moves += 1;
                }
                least
            } else {
                preferred
            };
            load[target] += group_chars;
            assignment[target].extend_from_slice(&members);
        }
        let route_micros = route_timer.elapsed().as_micros() as u64;

        self.sink.record(TraceEvent::RouterPlanned {
            shards: n as u32,
            jobs: jobs.len() as u64,
            groups: group_count,
            moves,
            micros: route_micros,
        });
        for (shard, admitted) in self.shards.iter().zip(&assignment) {
            let depth = admitted.len() as u64;
            shard.queue_depth.store(depth, Ordering::Relaxed);
            self.sink.record(TraceEvent::ShardAdmitted {
                shard: shard.id as u32,
                jobs: depth,
                depth,
            });
        }

        let shard_jobs: Vec<Vec<JobRef<'_>>> = assignment
            .iter()
            .map(|ids| ids.iter().map(|&i| jobs[i]).collect())
            .collect();
        let joined: Vec<std::thread::Result<Result<ThroughputReport, Error>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .zip(&shard_jobs)
                    .map(|(shard, sj)| scope.spawn(move || shard.engine.run_refs(sj)))
                    .collect();
                // Join every shard before inspecting any outcome, so
                // one failing shard never leaves siblings running.
                handles.into_iter().map(|h| h.join()).collect()
            });
        for shard in &self.shards {
            shard.queue_depth.store(0, Ordering::Relaxed);
        }

        let mut shard_reports = Vec::with_capacity(n);
        for (s, joined) in joined.into_iter().enumerate() {
            match joined {
                Ok(res) => shard_reports.push(res?),
                Err(_) => return Err(Error::WorkerPanicked { worker: s }),
            }
        }

        let mut outputs: Vec<Option<JobOutput>> = vec![None; jobs.len()];
        for (ids, report) in assignment.iter().zip(&shard_reports) {
            for (&global, out) in ids.iter().zip(&report.outputs) {
                outputs[global] = Some(out.clone());
            }
        }
        let outputs = outputs
            .into_iter()
            .map(|o| o.expect("every routed job produces an output"))
            .collect();

        Ok(RouterReport {
            outputs,
            shard_reports,
            groups: group_count,
            affinity_moves: moves,
            route_micros,
            wall_micros: wall.elapsed().as_micros() as u64,
        })
    }
}

/// What one routed batch produced, merged across shards.
#[derive(Debug)]
pub struct RouterReport {
    /// One output per job, in submission order.
    pub outputs: Vec<JobOutput>,
    /// Each shard's own report, in shard order (idle shards report
    /// empty runs).
    pub shard_reports: Vec<ThroughputReport>,
    /// Distinct pattern groups the batch split into.
    pub groups: u64,
    /// Groups routed away from their affinity shard to balance load.
    pub affinity_moves: u64,
    /// Wall-clock the router spent grouping and assigning.
    pub route_micros: u64,
    /// Wall-clock of the whole routed run, routing included.
    pub wall_micros: u64,
}

impl RouterReport {
    /// Total planning cost: router assignment plus every shard
    /// planner's `plan_micros`.
    pub fn plan_micros(&self) -> u64 {
        self.route_micros
            + self
                .shard_reports
                .iter()
                .map(|r| r.plan_micros)
                .sum::<u64>()
    }

    /// The gated ratio: planning cost over batch wall-clock (0 for an
    /// instantaneous run). The E36 benchmark holds this below 0.05 at
    /// 64 workers.
    pub fn planner_overhead_frac(&self) -> f64 {
        if self.wall_micros == 0 {
            return 0.0;
        }
        self.plan_micros() as f64 / self.wall_micros as f64
    }

    /// Text characters processed, summed across shards.
    pub fn total_chars(&self) -> u64 {
        self.shard_reports.iter().map(|r| r.totals.chars).sum()
    }

    /// Batches stolen across worker deques, summed across shards.
    pub fn steals(&self) -> u64 {
        self.shard_reports.iter().map(|r| r.totals.steals).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::{text_from_letters, Symbol};

    fn letters(s: &str) -> Vec<Symbol> {
        text_from_letters(s).unwrap()
    }

    fn job_mix() -> Vec<Job> {
        let patterns = ["AB", "ABC", "CxT", "DEFG", "A"];
        let texts = [
            "ABCABCABQABCCABCABABC",
            "CATCOTCUTQQCAT",
            "AAAAABAAAB",
            "DEFGDEFGABDEFG",
        ];
        let mut jobs = Vec::new();
        for (i, p) in patterns.iter().enumerate() {
            for (j, t) in texts.iter().enumerate() {
                jobs.push(Job::new(
                    (i * texts.len() + j) as u64,
                    Pattern::parse(p).unwrap(),
                    letters(t),
                ));
            }
        }
        jobs
    }

    #[test]
    fn routed_outputs_match_the_scalar_spec_in_submission_order() {
        let jobs = job_mix();
        for shards in [1, 2, 3, 5] {
            let router = Router::new(RouterConfig {
                shards,
                workers_per_shard: 2,
                ..RouterConfig::default()
            });
            let report = router.run(&jobs).unwrap();
            assert_eq!(report.outputs.len(), jobs.len());
            for (job, out) in jobs.iter().zip(&report.outputs) {
                assert_eq!(out.id, job.id, "submission order broken");
                let spec = match_spec(&job.text, &job.pattern);
                assert_eq!(out.hits.bits(), &spec[..], "job {}", job.id);
            }
        }
    }

    #[test]
    fn single_shard_router_equals_the_plain_engine() {
        let jobs = job_mix();
        let router = Router::new(RouterConfig {
            shards: 1,
            workers_per_shard: 3,
            ..RouterConfig::default()
        });
        let engine = ThroughputEngine::new(3, 256);
        let routed = router.run(&jobs).unwrap();
        let plain = engine.run(&jobs).unwrap();
        for (a, b) in routed.outputs.iter().zip(&plain.outputs) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.hits.bits(), b.hits.bits());
        }
        assert_eq!(routed.affinity_moves, 0, "one shard has nowhere to move");
    }

    #[test]
    fn affinity_is_deterministic_and_depths_return_to_zero() {
        let jobs = job_mix();
        let router = Router::new(RouterConfig {
            shards: 4,
            workers_per_shard: 1,
            ..RouterConfig::default()
        });
        let a = router.run(&jobs).unwrap();
        let b = router.run(&jobs).unwrap();
        assert_eq!(a.affinity_moves, b.affinity_moves);
        assert_eq!(a.groups, b.groups);
        assert_eq!(a.groups, 5, "five distinct patterns");
        for shard in router.shards() {
            assert_eq!(shard.queue_depth(), 0, "shard {} still queued", shard.id());
        }
    }

    #[test]
    fn budget_splits_exactly_and_session_pinning_is_stable() {
        let router = Router::new(RouterConfig {
            shards: 3,
            budget_bytes: 10,
            ..RouterConfig::default()
        });
        let slices: Vec<u64> = router
            .shards()
            .iter()
            .map(|s| s.pool().capacity())
            .collect();
        assert_eq!(slices.iter().sum::<u64>(), 10);
        assert_eq!(slices, vec![4, 3, 3]);
        assert_eq!(router.capacity(), 10);
        assert_eq!(router.in_flight(), 0);
        let first = router.shard_for(42).id();
        assert_eq!(router.shard_for(42).id(), first);
        assert_eq!(router.shard(first).id(), first);
    }

    #[test]
    fn empty_batch_reports_empty_everything() {
        let router = Router::new(RouterConfig::default());
        let report = router.run(&[]).unwrap();
        assert!(report.outputs.is_empty());
        assert_eq!(report.groups, 0);
        assert_eq!(report.total_chars(), 0);
        assert_eq!(report.shard_reports.len(), 4);
    }
}
