//! Multi-pass matching of patterns longer than the array (paper §3.4).
//!
//! "If the pattern to be matched is longer than the capacity of the
//! available pattern matching system, the pattern can be run through
//! the system several times to match it against the entire string. If
//! the system contains a total of n character cells, each run will
//! match the complete pattern against n substrings. To cover all
//! substrings, all we need do is delay the string by n characters on
//! succeeding runs."
//!
//! In a single pass the pattern does **not** recirculate: it streams
//! through once, delayed by `n−1` beats relative to the text so that
//! the window ending at (run-relative) position `i` accumulates in cell
//! `i−k`. Exactly the `n` windows ending at positions `k … k+n−1` fit
//! in the array; the next pass advances the text window by `n`.
//!
//! # Example
//!
//! A four-character pattern forced through a three-cell array: more
//! than one pass over the text, same answer as the specification.
//!
//! ```
//! use pm_chip::multipass::MultipassMatcher;
//! use pm_systolic::prelude::*;
//! use pm_systolic::symbol::text_from_letters;
//!
//! # fn main() -> Result<(), Error> {
//! let pattern = Pattern::parse("AXCA")?;
//! let text = text_from_letters("ABCAACCAABCA")?;
//! let m = MultipassMatcher::new(&pattern, 3)?;
//! assert!(m.passes_needed(text.len()) > 1);
//! assert_eq!(m.match_symbols(&text).bits(), match_spec(&text, &pattern));
//! # Ok(())
//! # }
//! ```

use pm_systolic::engine::MatchBits;
use pm_systolic::error::Error;
use pm_systolic::segment::{PatItem, Segment, SegmentIo, TxtItem};
use pm_systolic::semantics::BooleanMatch;
use pm_systolic::symbol::{Pattern, Symbol};

/// A matcher whose pattern may exceed the array size, at the price of
/// one pass over the text per `cells`-sized block of result positions.
#[derive(Debug, Clone)]
pub struct MultipassMatcher {
    pattern: Pattern,
    cells: usize,
}

impl MultipassMatcher {
    /// Builds a multi-pass matcher over an array of `cells` cells.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyPattern`] for an empty pattern. (There is no upper
    /// limit on pattern length — that is the point.)
    pub fn new(pattern: &Pattern, cells: usize) -> Result<Self, Error> {
        if pattern.is_empty() {
            return Err(Error::EmptyPattern);
        }
        if cells == 0 {
            return Err(Error::NoSegments);
        }
        Ok(MultipassMatcher {
            pattern: pattern.clone(),
            cells,
        })
    }

    /// Array size.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Number of passes needed over a text of `text_len` characters:
    /// one per `cells` result positions.
    pub fn passes_needed(&self, text_len: usize) -> usize {
        let k = self.pattern.k();
        if text_len <= k {
            0
        } else {
            (text_len - k).div_ceil(self.cells)
        }
    }

    /// Beats consumed by one pass (pattern stream + drain).
    pub fn beats_per_pass(&self, segment_len: usize) -> u64 {
        let n = self.cells as u64;
        let l = self.pattern.len() as u64;
        (2 * segment_len as u64).max(2 * l + n - 1) + 2 * n + 4
    }

    /// Matches the text, running as many passes as needed.
    pub fn match_symbols(&self, text: &[Symbol]) -> MatchBits {
        let k = self.pattern.k();
        let n = self.cells;
        let mut out = vec![false; text.len()];
        let mut pass = 0usize;
        while pass * n + k < text.len() {
            let base = pass * n;
            // A pass produces windows ending at relative k..k+n-1; it
            // needs at most k+n characters of text.
            let hi = (base + k + n).min(text.len());
            let segment = &text[base..hi];
            for (rel, value) in self.single_pass(segment) {
                out[base + rel] = value;
            }
            pass += 1;
        }
        MatchBits::new(out, k)
    }

    /// One non-recirculating pass: returns `(relative_end, matched)`
    /// for every complete window the array covers.
    fn single_pass(&self, text: &[Symbol]) -> Vec<(usize, bool)> {
        let n = self.cells;
        let l = self.pattern.len();
        let k = l - 1;
        let delay = (n - 1) as u64; // pattern lags the text
        let mut seg: Segment<BooleanMatch> = Segment::new(BooleanMatch, n);

        let total = self.beats_per_pass(text.len());
        let mut results = Vec::new();
        for t in 0..total {
            let exit = seg.outputs();
            if let Some(res) = exit.result {
                let i = res.seq as usize;
                if i >= k && i < text.len() {
                    results.push((i, res.value));
                }
            }
            // Pattern item j at beat 2j + (n−1), streamed exactly once.
            let pattern = t
                .checked_sub(delay)
                .filter(|d| d % 2 == 0)
                .map(|d| d / 2)
                .filter(|&j| (j as usize) < l)
                .map(|j| PatItem {
                    payload: self.pattern.symbols()[j as usize],
                    lambda: j as usize == k,
                });
            // Text item i at beat 2i.
            let text_in = if t % 2 == 0 {
                let i = (t / 2) as usize;
                text.get(i).map(|&payload| TxtItem {
                    payload,
                    seq: i as u64,
                })
            } else {
                None
            };
            seg.step(SegmentIo {
                pattern,
                text: text_in,
                result: None,
            });
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::text_from_letters;

    fn check(pattern: &str, text: &str, cells: usize) {
        let p = Pattern::parse(pattern).unwrap();
        let t = text_from_letters(text).unwrap();
        let m = MultipassMatcher::new(&p, cells).unwrap();
        assert_eq!(
            m.match_symbols(&t).bits(),
            match_spec(&t, &p),
            "pattern={pattern} text={text} cells={cells}"
        );
    }

    #[test]
    fn pattern_three_times_the_array() {
        // A 9-char pattern on a 3-cell array: three passes per block.
        check("ABCABDABA", &"ABCABDABA".repeat(3), 3);
    }

    #[test]
    fn pattern_longer_than_array_with_wildcards() {
        check("AXCAXC", "ABCAACAACAACABC", 2);
    }

    #[test]
    fn pattern_fits_in_one_cellful() {
        // Degenerate case: the array is big enough; one pass per block
        // still gives the right answer.
        check("AB", "ABABAB", 8);
    }

    #[test]
    fn single_cell_array() {
        check("ABA", "ABABABA", 1);
    }

    #[test]
    fn passes_needed_accounting() {
        let p = Pattern::parse(&"AB".repeat(8)).unwrap(); // 16 chars
        let m = MultipassMatcher::new(&p, 4).unwrap();
        // 100-char text: 85 complete windows, 4 per pass → 22 passes.
        assert_eq!(m.passes_needed(100), 22);
        assert_eq!(m.passes_needed(16), 1);
        assert_eq!(m.passes_needed(15), 0);
    }

    #[test]
    fn empty_and_short_texts() {
        let p = Pattern::parse("ABC").unwrap();
        let m = MultipassMatcher::new(&p, 2).unwrap();
        assert_eq!(m.match_symbols(&[]).bits(), &[] as &[bool]);
        let t = text_from_letters("AB").unwrap();
        assert_eq!(m.match_symbols(&t).bits(), &[false, false]);
    }
}
