//! Wafer-scale integration (paper §5).
//!
//! "The prospect of wafer-scale integration will increase the power of
//! special purpose devices. Modularity of algorithms is especially
//! important … Manufacturing defects make it essential to be able to
//! modify the interconnections so that a defective circuit is replaced
//! by a functioning one on the same wafer. This can be done easily if
//! there are only a few types of circuits with regular interconnections."
//!
//! This module quantifies that argument. A [`Wafer`] is a grid of
//! identical character cells with randomly placed manufacturing
//! defects. [`Wafer::harvest`] threads a serpentine chain through the
//! working cells — the "modified interconnections" — subject to a
//! bypass limit (wiring can jump over at most a few dead cells in a
//! row). The result is a smaller but *fully functional* linear array;
//! the yield comparison against an all-or-nothing monolithic design is
//! the paper's modularity dividend, in numbers.

use pm_systolic::matcher::SystolicMatcher;
use pm_systolic::symbol::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fabricated wafer of identical character cells, some defective.
#[derive(Debug, Clone)]
pub struct Wafer {
    rows: usize,
    cols: usize,
    /// `defective[r][c]` — true if the cell failed fabrication.
    defective: Vec<Vec<bool>>,
}

/// The outcome of interconnect harvesting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Harvest {
    /// Cells chained into the working array, in signal order.
    pub chain: Vec<(usize, usize)>,
    /// Cells abandoned because the bypass limit was exceeded.
    pub stranded: usize,
}

impl Wafer {
    /// Fabricates a `rows × cols` wafer where each cell independently
    /// fails with probability `defect_rate`. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the wafer is empty or the rate is outside `[0, 1]`.
    pub fn fabricate(rows: usize, cols: usize, defect_rate: f64, seed: u64) -> Self {
        assert!(rows > 0 && cols > 0, "wafer must have cells");
        assert!(
            (0.0..=1.0).contains(&defect_rate),
            "rate must be a probability"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let defective = (0..rows)
            .map(|_| (0..cols).map(|_| rng.gen_bool(defect_rate)).collect())
            .collect();
        Wafer {
            rows,
            cols,
            defective,
        }
    }

    /// Builds a wafer from an explicit defect map, one `Vec<bool>` per
    /// row (`true` = defective). This lets the §5 interconnect-rewiring
    /// logic be reused at *any* granularity: the self-healing cascade
    /// hands in one row of chip-socket health bits and harvests a chain
    /// of working sockets exactly as a wafer harvests working cells.
    ///
    /// ```
    /// use pm_chip::wafer::Wafer;
    ///
    /// // One row of chip-socket health bits: socket 1 is dead.
    /// let board = Wafer::from_defects(vec![vec![false, true, false, false]]);
    /// assert_eq!(board.working_cells(), 3);
    /// let harvest = board.harvest(1); // bypass wiring jumps one socket
    /// assert_eq!(harvest.chain, vec![(0, 0), (0, 2), (0, 3)]);
    /// assert_eq!(harvest.stranded, 0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the map is empty or the rows are ragged.
    pub fn from_defects(defective: Vec<Vec<bool>>) -> Self {
        let rows = defective.len();
        assert!(rows > 0, "wafer must have cells");
        let cols = defective[0].len();
        assert!(cols > 0, "wafer must have cells");
        assert!(
            defective.iter().all(|row| row.len() == cols),
            "defect map rows must be equal length"
        );
        Wafer {
            rows,
            cols,
            defective,
        }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total cells fabricated.
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Number of working cells (before routing constraints).
    pub fn working_cells(&self) -> usize {
        self.defective
            .iter()
            .map(|row| row.iter().filter(|&&d| !d).count())
            .sum()
    }

    /// Whether a cell is defective.
    pub fn is_defective(&self, row: usize, col: usize) -> bool {
        self.defective[row][col]
    }

    /// Threads a serpentine chain through the working cells, bypassing
    /// up to `max_bypass` consecutive dead cells; longer dead runs
    /// strand the rest of that row segment until the next turn.
    pub fn harvest(&self, max_bypass: usize) -> Harvest {
        let mut chain = Vec::new();
        let mut stranded = 0usize;
        for r in 0..self.rows {
            // Serpentine: even rows left→right, odd rows right→left.
            let cols: Vec<usize> = if r % 2 == 0 {
                (0..self.cols).collect()
            } else {
                (0..self.cols).rev().collect()
            };
            let mut dead_run = 0usize;
            let mut segment: Vec<(usize, usize)> = Vec::new();
            let mut abandoned = false;
            for c in cols {
                if self.defective[r][c] {
                    dead_run += 1;
                    if dead_run > max_bypass {
                        abandoned = true;
                    }
                } else if abandoned {
                    stranded += 1;
                } else {
                    dead_run = 0;
                    segment.push((r, c));
                }
            }
            chain.extend(segment);
        }
        Harvest { chain, stranded }
    }

    /// A matcher running on the harvested array, if it is big enough
    /// for the pattern. The harvested cells form one linear systolic
    /// array — the whole point of local-only interconnection.
    ///
    /// # Errors
    ///
    /// The usual construction errors if the harvest is too small.
    pub fn matcher(
        &self,
        pattern: &Pattern,
        max_bypass: usize,
    ) -> Result<SystolicMatcher, pm_systolic::Error> {
        let usable = self.harvest(max_bypass).chain.len().max(1);
        SystolicMatcher::with_cells(pattern, usable)
    }
}

/// Yield statistics for one defect rate: the monolithic (all cells or
/// nothing) yield versus the harvested fraction of cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldPoint {
    /// Per-cell defect probability.
    pub defect_rate: f64,
    /// Fraction of wafers on which *every* cell works (a monolithic,
    /// non-reconfigurable design ships only these).
    pub monolithic_yield: f64,
    /// Mean fraction of cells recovered by harvesting.
    pub harvested_fraction: f64,
}

/// Monte-Carlo yield comparison across defect rates (E19).
pub fn yield_curve(
    rows: usize,
    cols: usize,
    rates: &[f64],
    max_bypass: usize,
    trials: u32,
    seed: u64,
) -> Vec<YieldPoint> {
    rates
        .iter()
        .map(|&rate| {
            let mut perfect = 0u32;
            let mut recovered = 0usize;
            for t in 0..trials {
                let wafer = Wafer::fabricate(
                    rows,
                    cols,
                    rate,
                    seed ^ (u64::from(t) << 17) ^ rate.to_bits(),
                );
                if wafer.working_cells() == wafer.cells() {
                    perfect += 1;
                }
                recovered += wafer.harvest(max_bypass).chain.len();
            }
            YieldPoint {
                defect_rate: rate,
                monolithic_yield: f64::from(perfect) / f64::from(trials),
                harvested_fraction: recovered as f64 / (f64::from(trials) * (rows * cols) as f64),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::text_from_letters;

    #[test]
    fn perfect_wafer_harvests_everything() {
        let wafer = Wafer::fabricate(4, 16, 0.0, 1);
        let h = wafer.harvest(2);
        assert_eq!(h.chain.len(), 64);
        assert_eq!(h.stranded, 0);
        assert_eq!(wafer.working_cells(), 64);
    }

    #[test]
    fn dead_wafer_harvests_nothing() {
        let wafer = Wafer::fabricate(4, 16, 1.0, 1);
        assert!(wafer.harvest(3).chain.is_empty());
        assert_eq!(wafer.working_cells(), 0);
    }

    #[test]
    fn harvest_is_deterministic_and_monotone_in_bypass() {
        let wafer = Wafer::fabricate(8, 32, 0.15, 99);
        let h1 = wafer.harvest(1);
        let h1b = wafer.harvest(1);
        assert_eq!(h1, h1b);
        let h3 = wafer.harvest(3);
        assert!(h3.chain.len() >= h1.chain.len(), "more bypass, more cells");
    }

    #[test]
    fn harvest_contains_only_working_cells() {
        let wafer = Wafer::fabricate(6, 20, 0.2, 5);
        for &(r, c) in &wafer.harvest(2).chain {
            assert!(!wafer.is_defective(r, c));
        }
    }

    #[test]
    fn harvested_array_still_matches() {
        // The §5 payoff: a defective wafer still yields a working
        // (smaller) matcher because the cells only talk to neighbours.
        let wafer = Wafer::fabricate(4, 16, 0.25, 7);
        let pattern = Pattern::parse("AXBA").unwrap();
        let mut m = wafer.matcher(&pattern, 2).unwrap();
        let text = text_from_letters("ABBAABBAACBA").unwrap();
        assert_eq!(m.match_symbols(&text).bits(), match_spec(&text, &pattern));
        assert!(m.cells() < wafer.cells(), "some cells were lost to defects");
    }

    #[test]
    fn from_defects_matches_harvest_semantics() {
        // One row of chip sockets, third socket dead: the chain skips
        // it and keeps physical order — the cascade-remap primitive.
        let wafer = Wafer::from_defects(vec![vec![false, false, true, false, false]]);
        let h = wafer.harvest(1);
        assert_eq!(h.chain, vec![(0, 0), (0, 1), (0, 3), (0, 4)]);
        assert_eq!(h.stranded, 0);
        // With no bypass wiring, everything past the dead socket strands.
        let h0 = wafer.harvest(0);
        assert_eq!(h0.chain, vec![(0, 0), (0, 1)]);
        assert_eq!(h0.stranded, 2);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn from_defects_rejects_ragged_maps() {
        let _ = Wafer::from_defects(vec![vec![false], vec![false, true]]);
    }

    #[test]
    fn yield_curve_shows_the_modularity_dividend() {
        let points = yield_curve(8, 32, &[0.0, 0.02, 0.10], 2, 20, 1234);
        // No defects: both perfect.
        assert!((points[0].monolithic_yield - 1.0).abs() < 1e-9);
        assert!((points[0].harvested_fraction - 1.0).abs() < 1e-9);
        // 2% defects: a 256-cell monolith almost never ships, while
        // harvesting recovers nearly everything.
        assert!(points[1].monolithic_yield < 0.15);
        assert!(points[1].harvested_fraction > 0.85);
        // Degradation is graceful, not cliff-edged.
        assert!(points[2].harvested_fraction > 0.5);
    }
}
