//! Multi-stream job scheduling over the bit-plane batch engines.
//!
//! The paper's throughput claim (§1: one character every 250 ns,
//! "higher than the memory bandwidth of most conventional computers")
//! describes a chip serving *one* stream very fast. A host with many
//! concurrent search jobs — the ROADMAP's "heavy traffic" scenario —
//! wants the aggregate rate instead, and the bit-plane engines supply
//! it: 64 independent streams per machine word
//! ([`pm_systolic::batch`]), up to 512 per superplane
//! ([`pm_systolic::superplane`]). This module is the host-side
//! scheduler that keeps those lanes full:
//!
//! * [`ThroughputEngine::run`] plans batches *globally* — every job is
//!   grouped by pattern across the whole submission, so same-pattern
//!   jobs land in the same zero-setup uniform batch no matter which
//!   worker would have owned them under static sharding; leftover
//!   singletons pool into mixed batches;
//! * batches go onto per-worker deques and workers *steal*: each pops
//!   its own deque from the front and raids the back of its neighbours'
//!   when it runs dry, so a straggler batch never idles the rest of the
//!   pool;
//! * the batch width is a [`SuperWidth`] — one `u64` plane (64 lanes)
//!   or a 4- or 8-word superplane (256 / 512 lanes, the default) whose
//!   kernel is runtime-dispatched to AVX2/AVX-512 where the CPU has
//!   them ([`simd_level`]); the choice is announced once per run via
//!   [`TraceEvent::DispatchSelected`] and echoed in the
//!   [`ThroughputReport`];
//! * pattern → control-bit-plane compilation is memoised twice over: a
//!   private [`PatternCache`] per worker (no lock at all on the hot
//!   path) backed by a shared read-mostly [`PatternIndex`] that
//!   persists across runs, so the setup cost the paper's §3.3.1
//!   analysis worries about ("loading this pattern") is paid once per
//!   *distinct* pattern, not once per job — and never behind a global
//!   mutex;
//! * per-worker [`WorkerStats`] and whole-run rates (chars/sec, lane
//!   occupancy, cache hit rate) are surfaced through the
//!   [`counters`](crate::counters) module.
//!
//! Results are bit-identical to running every job alone through the
//! scalar array — property-tested against the executable spec.
//!
//! ```
//! use pm_chip::throughput::{Job, ThroughputEngine};
//! use pm_systolic::symbol::{Pattern, text_from_letters};
//!
//! # fn main() -> Result<(), pm_systolic::Error> {
//! let pattern = Pattern::parse("AXC")?;
//! let jobs: Vec<Job> = (0..3)
//!     .map(|id| Job::new(id, pattern.clone(), text_from_letters("ABCAACCAB").unwrap()))
//!     .collect();
//! let engine = ThroughputEngine::new(2, 16);
//! let report = engine.run(&jobs)?;
//! assert_eq!(report.outputs[0].hits.ending_positions(), vec![2, 5, 6]);
//! assert_eq!(report.totals.jobs, 3);
//! let again = engine.run(&jobs)?; // the compiled planes are indexed now
//! assert_eq!(again.totals.cache_misses, 0);
//! # Ok(())
//! # }
//! ```

use crate::counters::{Counter, CounterSnapshot, RateWindow, ThroughputCounters};
use pm_systolic::batch::{match_lanes, match_uniform, CompiledPattern};
use pm_systolic::engine::MatchBits;
use pm_systolic::error::Error;
use pm_systolic::superplane::{
    lanes_of, match_lanes_wide, match_uniform_wide, simd_level, SimdLevel,
};
use pm_systolic::symbol::{Pattern, Symbol};
use pm_systolic::telemetry::{SinkHandle, TraceEvent};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Default sliding window for [`ThroughputEngine::windowed_chars_per_sec`].
const RATE_WINDOW: Duration = Duration::from_secs(30);

/// How wide one batch is: the number of 64-lane machine words packed
/// side by side in each bit plane.
///
/// [`W1`](SuperWidth::W1) is the original `u64` engine of
/// [`pm_systolic::batch`]; [`W4`](SuperWidth::W4) and
/// [`W8`](SuperWidth::W8) are the superplane widths of
/// [`pm_systolic::superplane`], whose kernels runtime-dispatch to
/// AVX2/AVX-512 on CPUs that have them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SuperWidth {
    /// One `u64` word per plane: 64 lanes per batch.
    W1,
    /// Four words per plane: 256 lanes per batch.
    W4,
    /// Eight words per plane: 512 lanes per batch (the default).
    #[default]
    W8,
}

impl SuperWidth {
    /// Plane width in 64-bit words.
    pub const fn words(self) -> usize {
        match self {
            SuperWidth::W1 => 1,
            SuperWidth::W4 => 4,
            SuperWidth::W8 => 8,
        }
    }

    /// Lane slots one batch of this width offers.
    pub const fn lanes(self) -> usize {
        lanes_of(self.words())
    }

    /// Short human label for figures and reports.
    pub const fn label(self) -> &'static str {
        match self {
            SuperWidth::W1 => "u64",
            SuperWidth::W4 => "superplane-4",
            SuperWidth::W8 => "superplane-8",
        }
    }
}

impl fmt::Display for SuperWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// One incoming unit of work: match `pattern` against `text`.
#[derive(Debug, Clone)]
pub struct Job {
    /// Caller-chosen identifier, echoed in the [`JobOutput`].
    pub id: u64,
    /// The pattern to search for (wild cards allowed).
    pub pattern: Pattern,
    /// The text stream to search.
    pub text: Vec<Symbol>,
}

impl Job {
    /// Bundles a job.
    pub fn new(id: u64, pattern: Pattern, text: Vec<Symbol>) -> Self {
        Job { id, pattern, text }
    }
}

/// The completed result of one [`Job`].
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The job's identifier.
    pub id: u64,
    /// One result bit per text position, as from the scalar matcher.
    pub hits: MatchBits,
}

/// An LRU cache of compiled pattern control planes, keyed by pattern.
///
/// Compilation walks the pattern and allocates its broadcast planes;
/// a hot service sees the same handful of patterns over and over, so
/// the cache turns per-job setup into per-*distinct*-pattern setup.
/// Each scheduler worker owns one privately (no locking); the shared
/// tier behind it is a [`PatternIndex`].
///
/// ```
/// use pm_chip::throughput::PatternCache;
/// use pm_systolic::symbol::Pattern;
///
/// let mut cache = PatternCache::new(2);
/// let a = Pattern::parse("AB").unwrap();
/// let (_, hit) = cache.get_or_compile(&a);
/// assert!(!hit); // first sight compiles
/// let (_, hit) = cache.get_or_compile(&a);
/// assert!(hit); // second is served from cache
/// ```
#[derive(Debug)]
pub struct PatternCache {
    capacity: usize,
    tick: u64,
    map: HashMap<Pattern, CacheEntry>,
}

#[derive(Debug)]
struct CacheEntry {
    compiled: Arc<CompiledPattern>,
    last_used: u64,
}

impl PatternCache {
    /// A cache holding at most `capacity` compiled patterns (at least
    /// one).
    pub fn new(capacity: usize) -> Self {
        PatternCache {
            capacity: capacity.max(1),
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Looks `pattern` up, refreshing its recency on a hit.
    pub fn get(&mut self, pattern: &Pattern) -> Option<Arc<CompiledPattern>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(pattern).map(|entry| {
            entry.last_used = tick;
            Arc::clone(&entry.compiled)
        })
    }

    /// Stores an already-compiled pattern, evicting the least recently
    /// used entry if the cache is full.
    pub fn insert(&mut self, pattern: &Pattern, compiled: Arc<CompiledPattern>) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(pattern) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(p, _)| p.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(
            pattern.clone(),
            CacheEntry {
                compiled,
                last_used: self.tick,
            },
        );
    }

    /// Returns the compiled planes for `pattern` and whether the lookup
    /// was a hit, compiling and (LRU-)evicting on a miss.
    pub fn get_or_compile(&mut self, pattern: &Pattern) -> (Arc<CompiledPattern>, bool) {
        if let Some(compiled) = self.get(pattern) {
            return (compiled, true);
        }
        let compiled = Arc::new(CompiledPattern::compile(pattern));
        self.insert(pattern, Arc::clone(&compiled));
        (compiled, false)
    }

    /// Number of patterns currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of cached patterns.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// The shared, read-mostly tier of pattern memoisation: a
/// `RwLock`-guarded map that persists across runs of a
/// [`ThroughputEngine`].
///
/// Workers consult it only after missing their private
/// [`PatternCache`], take the write lock only to publish a freshly
/// compiled pattern, and never hold any lock while matching — the old
/// global `Mutex<PatternCache>` serialised every lookup of every
/// worker through one point. Eviction is FIFO by publication order
/// (recency lives in the per-worker caches; the index only has to
/// bound memory).
#[derive(Debug)]
pub struct PatternIndex {
    capacity: usize,
    inner: RwLock<IndexInner>,
}

#[derive(Debug, Default)]
struct IndexInner {
    map: HashMap<Pattern, Arc<CompiledPattern>>,
    fifo: VecDeque<Pattern>,
}

impl PatternIndex {
    /// An index holding at most `capacity` compiled patterns (at least
    /// one).
    pub fn new(capacity: usize) -> Self {
        PatternIndex {
            capacity: capacity.max(1),
            inner: RwLock::new(IndexInner::default()),
        }
    }

    /// Looks `pattern` up under the read lock.
    pub fn get(&self, pattern: &Pattern) -> Option<Arc<CompiledPattern>> {
        self.inner
            .read()
            .expect("index poisoned")
            .map
            .get(pattern)
            .cloned()
    }

    /// Publishes a compiled pattern under the write lock, evicting the
    /// oldest publication at capacity. Concurrent publishers of the
    /// same pattern are harmless: the first insert wins and later ones
    /// are no-ops.
    pub fn publish(&self, pattern: &Pattern, compiled: Arc<CompiledPattern>) {
        let mut inner = self.inner.write().expect("index poisoned");
        if inner.map.contains_key(pattern) {
            return;
        }
        while inner.map.len() >= self.capacity {
            match inner.fifo.pop_front() {
                Some(oldest) => {
                    inner.map.remove(&oldest);
                }
                None => break,
            }
        }
        inner.map.insert(pattern.clone(), compiled);
        inner.fifo.push_back(pattern.clone());
    }

    /// Number of patterns currently indexed.
    pub fn len(&self) -> usize {
        self.inner.read().expect("index poisoned").map.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of indexed patterns.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// What one worker thread did during a run.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// Jobs this worker completed.
    pub jobs: u64,
    /// Text characters this worker pushed through the engine.
    pub chars: u64,
    /// Batches this worker executed.
    pub batches: u64,
    /// Lane slots this worker filled, out of `lane_slots`.
    pub lanes_used: u64,
    /// Lane slots this worker's batches offered (64 per `u64` batch,
    /// `W × 64` per width-`W` superplane batch).
    pub lane_slots: u64,
    /// Wall-clock time this worker spent matching.
    pub elapsed: Duration,
}

impl WorkerStats {
    fn idle(worker: usize) -> Self {
        WorkerStats {
            worker,
            jobs: 0,
            chars: 0,
            batches: 0,
            lanes_used: 0,
            lane_slots: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// This worker's character rate.
    pub fn chars_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.chars as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of this worker's lane slots that carried a stream.
    pub fn lane_occupancy(&self) -> f64 {
        if self.lane_slots > 0 {
            self.lanes_used as f64 / self.lane_slots as f64
        } else {
            0.0
        }
    }
}

/// The outcome of one [`ThroughputEngine::run`].
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// One output per input job, in input order.
    pub outputs: Vec<JobOutput>,
    /// Per-worker statistics (idle workers report zero batches).
    pub workers: Vec<WorkerStats>,
    /// Whole-run counters and derived rates.
    pub totals: CounterSnapshot,
    /// The instruction-set level the superplane kernels dispatched to
    /// this run (process-wide; `Portable` also covers the `u64` width,
    /// which has no specialised kernels).
    pub simd: SimdLevel,
    /// Lane slots per batch at the width this run used.
    pub lanes_per_batch: usize,
}

/// One planned batch: global job indices that will advance together.
#[derive(Debug)]
enum BatchDesc {
    /// Every member shares one pattern — zero-setup uniform path.
    Uniform {
        /// Global indices into the run's job slice.
        members: Vec<usize>,
    },
    /// Members carry distinct patterns packed lane by lane.
    Mixed {
        /// Global indices into the run's job slice.
        members: Vec<usize>,
    },
}

/// Groups all jobs by pattern (first-seen order) and cuts the groups
/// into width-sized batches. Groups of two or more ride the uniform
/// path; singletons pool into mixed batches. Global planning is what
/// lets same-pattern jobs share a batch regardless of submission
/// order — the old per-shard grouping could only merge jobs that
/// happened to land on the same worker.
fn plan_batches(jobs: &[Job], lanes: usize) -> Vec<BatchDesc> {
    let mut order: Vec<&Pattern> = Vec::new();
    let mut groups: HashMap<&Pattern, Vec<usize>> = HashMap::new();
    for (i, job) in jobs.iter().enumerate() {
        groups.entry(&job.pattern).or_insert_with(|| {
            order.push(&job.pattern);
            Vec::new()
        });
        groups.get_mut(&job.pattern).expect("just inserted").push(i);
    }
    let mut plan = Vec::new();
    let mut singles: Vec<usize> = Vec::new();
    for pattern in order {
        let members = &groups[pattern];
        if members.len() == 1 {
            singles.push(members[0]);
            continue;
        }
        for batch in members.chunks(lanes) {
            plan.push(BatchDesc::Uniform {
                members: batch.to_vec(),
            });
        }
    }
    for batch in singles.chunks(lanes) {
        plan.push(BatchDesc::Mixed {
            members: batch.to_vec(),
        });
    }
    plan
}

/// Per-worker deques of batch indices with work stealing: a worker
/// drains its own deque from the front and, when empty, steals from
/// the *back* of its neighbours' — the classic arrangement that keeps
/// owner and thief on opposite ends.
struct WorkQueue {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl WorkQueue {
    /// Distributes `batches` batch indices round-robin over `workers`
    /// deques.
    fn new(batches: usize, workers: usize) -> Self {
        let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for b in 0..batches {
            deques[b % workers].push_back(b);
        }
        WorkQueue {
            deques: deques.into_iter().map(Mutex::new).collect(),
        }
    }

    /// The next batch for `worker`: its own front, else a steal from
    /// another deque's back. `None` means every batch is claimed.
    fn next(&self, worker: usize) -> Option<usize> {
        if let Some(b) = self.deques[worker]
            .lock()
            .expect("queue poisoned")
            .pop_front()
        {
            return Some(b);
        }
        let n = self.deques.len();
        for off in 1..n {
            let victim = (worker + off) % n;
            if let Some(b) = self.deques[victim]
                .lock()
                .expect("queue poisoned")
                .pop_back()
            {
                return Some(b);
            }
        }
        None
    }
}

/// Plans batches globally, then lets worker threads pull them from
/// work-stealing deques, each driving a bit-plane batch engine of the
/// configured [`SuperWidth`]. Compiled patterns persist across runs in
/// a shared [`PatternIndex`] behind per-worker [`PatternCache`]s.
#[derive(Debug)]
pub struct ThroughputEngine {
    workers: usize,
    width: SuperWidth,
    cache_capacity: usize,
    index: PatternIndex,
    sink: SinkHandle,
    /// Characters processed across every run of this engine's lifetime.
    lifetime_chars: Counter,
    /// Sliding window over `lifetime_chars`, sampled after each run.
    rate: RateWindow,
}

impl ThroughputEngine {
    /// An engine with `workers` threads (at least one) and pattern
    /// caches of `cache_capacity` entries each (one shared index plus
    /// one private cache per worker). Batches default to the widest
    /// superplane ([`SuperWidth::W8`]); telemetry is disabled; use
    /// [`with_sink`](Self::with_sink) or [`set_sink`](Self::set_sink)
    /// to attach a sink and [`set_width`](Self::set_width) to narrow
    /// the batches.
    pub fn new(workers: usize, cache_capacity: usize) -> Self {
        Self::with_sink(workers, cache_capacity, SinkHandle::null())
    }

    /// As [`new`](Self::new), with a trace sink the workers emit job
    /// lifecycle, batch, dispatch and cache events into.
    pub fn with_sink(workers: usize, cache_capacity: usize, sink: SinkHandle) -> Self {
        ThroughputEngine {
            workers: workers.max(1),
            width: SuperWidth::default(),
            cache_capacity: cache_capacity.max(1),
            index: PatternIndex::new(cache_capacity),
            sink,
            lifetime_chars: Counter::new(),
            rate: {
                let rate = RateWindow::new(RATE_WINDOW);
                rate.sample(0); // construction anchors the window
                rate
            },
        }
    }

    /// Replaces the trace sink (e.g. to enable telemetry on a running
    /// engine between runs).
    pub fn set_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    /// Selects the batch width for subsequent runs.
    pub fn set_width(&mut self, width: SuperWidth) {
        self.width = width;
    }

    /// The batch width subsequent runs will use.
    pub fn width(&self) -> SuperWidth {
        self.width
    }

    /// Lane slots per batch at the current width.
    pub fn lanes_per_batch(&self) -> usize {
        self.width.lanes()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of distinct patterns currently in the shared index.
    pub fn cached_patterns(&self) -> usize {
        self.index.len()
    }

    /// Characters processed across this engine's whole lifetime.
    pub fn lifetime_chars(&self) -> u64 {
        self.lifetime_chars.get()
    }

    /// Current throughput over the last ~30 s of wall clock — the
    /// windowed rate a long-running scheduler should report, as opposed
    /// to the lifetime average a finite benchmark wants
    /// ([`CounterSnapshot::chars_per_sec`]). Returns 0.0 until two runs
    /// have completed inside the window.
    pub fn windowed_chars_per_sec(&self) -> f64 {
        self.rate.rate()
    }

    /// Runs every job to completion and reports results plus stats.
    /// Output `i` belongs to input job `i` regardless of which worker
    /// or batch carried it.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (none are currently reachable: the
    /// planner never overfills a batch).
    pub fn run(&self, jobs: &[Job]) -> Result<ThroughputReport, Error> {
        let started = Instant::now();
        let width = self.width;
        let simd = simd_level();
        self.sink.record(TraceEvent::DispatchSelected {
            words: width.words() as u32,
            level: simd,
        });

        let counters = ThroughputCounters::new();
        let plan = plan_batches(jobs, width.lanes());
        let queue = WorkQueue::new(plan.len(), self.workers);
        let mut outputs: Vec<Option<JobOutput>> = vec![None; jobs.len()];

        let results: Vec<Result<WorkerYield, Error>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|w| {
                    let (counters, plan, queue) = (&counters, &plan, &queue);
                    let (index, sink) = (&self.index, &self.sink);
                    let capacity = self.cache_capacity;
                    scope.spawn(move || {
                        worker_run(w, jobs, plan, queue, index, capacity, counters, sink, width)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        let mut worker_stats = Vec::with_capacity(self.workers);
        for res in results {
            let (outs, stats) = res?;
            for (idx, out) in outs {
                outputs[idx] = Some(out);
            }
            worker_stats.push(stats);
        }
        worker_stats.sort_by_key(|s| s.worker);

        let outputs = outputs
            .into_iter()
            .map(|o| o.expect("every job produces an output"))
            .collect();
        let totals = counters.snapshot(started.elapsed());
        self.lifetime_chars.add(totals.chars);
        self.rate.sample(self.lifetime_chars.get());
        Ok(ThroughputReport {
            outputs,
            workers: worker_stats,
            totals,
            simd,
            lanes_per_batch: width.lanes(),
        })
    }
}

/// What one worker hands back: outputs tagged with their global job
/// index, plus the worker's own statistics.
type WorkerYield = (Vec<(usize, JobOutput)>, WorkerStats);

/// Two-tier pattern lookup: private cache, then shared index (copying
/// the hit down into the cache), then compile-and-publish. Only the
/// last is a miss.
fn lookup_pattern(
    pattern: &Pattern,
    local: &mut PatternCache,
    index: &PatternIndex,
    counters: &ThroughputCounters,
    sink: &SinkHandle,
) -> Arc<CompiledPattern> {
    if let Some(compiled) = local.get(pattern) {
        counters.cache_hits.add(1);
        sink.record(TraceEvent::CacheLookup { hit: true });
        return compiled;
    }
    if let Some(compiled) = index.get(pattern) {
        local.insert(pattern, Arc::clone(&compiled));
        counters.cache_hits.add(1);
        sink.record(TraceEvent::CacheLookup { hit: true });
        return compiled;
    }
    let compiled = Arc::new(CompiledPattern::compile(pattern));
    index.publish(pattern, Arc::clone(&compiled));
    local.insert(pattern, Arc::clone(&compiled));
    counters.cache_misses.add(1);
    sink.record(TraceEvent::CacheLookup { hit: false });
    compiled
}

/// One worker: pull batches from the stealing queue until none remain.
#[allow(clippy::too_many_arguments)]
fn worker_run(
    worker: usize,
    jobs: &[Job],
    plan: &[BatchDesc],
    queue: &WorkQueue,
    index: &PatternIndex,
    cache_capacity: usize,
    counters: &ThroughputCounters,
    sink: &SinkHandle,
    width: SuperWidth,
) -> Result<WorkerYield, Error> {
    let started = Instant::now();
    let mut local = PatternCache::new(cache_capacity);
    let mut stats = WorkerStats::idle(worker);
    let mut outs: Vec<(usize, JobOutput)> = Vec::new();

    while let Some(b) = queue.next(worker) {
        let members = match &plan[b] {
            BatchDesc::Uniform { members } | BatchDesc::Mixed { members } => members,
        };
        if sink.enabled() {
            for &i in members {
                sink.record(TraceEvent::JobStarted {
                    job: jobs[i].id,
                    worker: worker as u32,
                });
            }
        }
        match &plan[b] {
            BatchDesc::Uniform { members } => {
                let compiled =
                    lookup_pattern(&jobs[members[0]].pattern, &mut local, index, counters, sink);
                let texts: Vec<&[Symbol]> =
                    members.iter().map(|&i| jobs[i].text.as_slice()).collect();
                let timer = sink.enabled().then(Instant::now);
                let hits = match width {
                    SuperWidth::W1 => match_uniform(&compiled, &texts)?,
                    SuperWidth::W4 => match_uniform_wide::<4>(&compiled, &texts)?,
                    SuperWidth::W8 => match_uniform_wide::<8>(&compiled, &texts)?,
                };
                record_batch(
                    members,
                    hits,
                    jobs,
                    &mut outs,
                    &mut stats,
                    counters,
                    sink,
                    elapsed_micros(timer),
                    width,
                )
            }
            BatchDesc::Mixed { members } => {
                let compiled: Vec<Arc<CompiledPattern>> = members
                    .iter()
                    .map(|&i| lookup_pattern(&jobs[i].pattern, &mut local, index, counters, sink))
                    .collect();
                let lanes: Vec<(&CompiledPattern, &[Symbol])> = members
                    .iter()
                    .zip(&compiled)
                    .map(|(&i, c)| (c.as_ref(), jobs[i].text.as_slice()))
                    .collect();
                let timer = sink.enabled().then(Instant::now);
                let hits = match width {
                    SuperWidth::W1 => match_lanes(&lanes)?,
                    SuperWidth::W4 => match_lanes_wide::<4>(&lanes)?,
                    SuperWidth::W8 => match_lanes_wide::<8>(&lanes)?,
                };
                record_batch(
                    members,
                    hits,
                    jobs,
                    &mut outs,
                    &mut stats,
                    counters,
                    sink,
                    elapsed_micros(timer),
                    width,
                )
            }
        }
    }

    stats.elapsed = started.elapsed();
    Ok((outs, stats))
}

/// Microseconds since an optional batch timer was armed (0 when the
/// sink was disabled and no timer ran).
fn elapsed_micros(timer: Option<Instant>) -> u64 {
    timer.map_or(0, |t| t.elapsed().as_micros() as u64)
}

/// Books one completed batch into outputs, stats, counters and the
/// trace sink.
#[allow(clippy::too_many_arguments)]
fn record_batch(
    members: &[usize],
    hits: Vec<MatchBits>,
    jobs: &[Job],
    outs: &mut Vec<(usize, JobOutput)>,
    stats: &mut WorkerStats,
    counters: &ThroughputCounters,
    sink: &SinkHandle,
    micros: u64,
    width: SuperWidth,
) {
    debug_assert_eq!(members.len(), hits.len());
    let traced = sink.enabled();
    let slots = width.lanes() as u64;
    let mut batch_chars = 0u64;
    let mut steps = 0u64;
    for (&i, hit) in members.iter().zip(hits) {
        let job = &jobs[i];
        batch_chars += job.text.len() as u64;
        steps = steps.max(job.text.len() as u64);
        if traced {
            sink.record(TraceEvent::JobCompleted {
                job: job.id,
                worker: stats.worker as u32,
                chars: job.text.len() as u64,
                matches: hit.count() as u64,
            });
        }
        outs.push((
            i,
            JobOutput {
                id: job.id,
                hits: hit,
            },
        ));
    }
    if traced {
        sink.record(TraceEvent::BatchExecuted {
            worker: stats.worker as u32,
            lanes: members.len() as u32,
            slots: slots as u32,
            steps,
            micros,
        });
    }
    stats.jobs += members.len() as u64;
    stats.chars += batch_chars;
    stats.batches += 1;
    stats.lanes_used += members.len() as u64;
    stats.lane_slots += slots;
    counters.jobs.add(members.len() as u64);
    counters.chars.add(batch_chars);
    counters.batches.add(1);
    counters.lane_slots_used.add(members.len() as u64);
    counters.lane_slots_total.add(slots);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::text_from_letters;

    fn jobs_fixture() -> Vec<Job> {
        let p1 = Pattern::parse("AXC").unwrap();
        let p2 = Pattern::parse("BB").unwrap();
        let p3 = Pattern::parse("CABX").unwrap();
        let texts = ["ABCAACCAB", "BBABBB", "CABACABC", "", "AACCA"];
        let mut jobs = Vec::new();
        for (i, t) in texts.iter().enumerate() {
            for (j, p) in [&p1, &p2, &p3].iter().enumerate() {
                jobs.push(Job::new(
                    (i * 3 + j) as u64,
                    (*p).clone(),
                    text_from_letters(t).unwrap(),
                ));
            }
        }
        jobs
    }

    #[test]
    fn outputs_equal_spec_for_any_worker_count_and_width() {
        let jobs = jobs_fixture();
        for width in [SuperWidth::W1, SuperWidth::W4, SuperWidth::W8] {
            for workers in [1, 2, 3, 7] {
                let mut engine = ThroughputEngine::new(workers, 8);
                engine.set_width(width);
                let report = engine.run(&jobs).unwrap();
                assert_eq!(report.outputs.len(), jobs.len());
                assert_eq!(report.lanes_per_batch, width.lanes());
                for (out, job) in report.outputs.iter().zip(&jobs) {
                    assert_eq!(out.id, job.id);
                    assert_eq!(
                        out.hits.bits(),
                        match_spec(&job.text, &job.pattern),
                        "job {} under {workers} workers at width {width}",
                        job.id
                    );
                }
            }
        }
    }

    #[test]
    fn repeated_patterns_hit_the_cache() {
        let jobs = jobs_fixture();
        let engine = ThroughputEngine::new(1, 8);
        let report = engine.run(&jobs).unwrap();
        // 3 distinct patterns; one worker sees each exactly once.
        assert_eq!(report.totals.cache_misses, 3);
        assert_eq!(engine.cached_patterns(), 3);
        // A second run finds everything in the shared index: all hits.
        let report2 = engine.run(&jobs).unwrap();
        assert_eq!(report2.totals.cache_misses, 0);
        assert!(report2.totals.cache_hit_rate() == 1.0);
    }

    #[test]
    fn lru_evicts_the_coldest_pattern() {
        let mut cache = PatternCache::new(2);
        let a = Pattern::parse("A").unwrap();
        let b = Pattern::parse("B").unwrap();
        let c = Pattern::parse("C").unwrap();
        cache.get_or_compile(&a);
        cache.get_or_compile(&b);
        cache.get_or_compile(&a); // refresh a; b is now coldest
        cache.get_or_compile(&c); // evicts b
        assert_eq!(cache.len(), 2);
        let (_, hit_a) = cache.get_or_compile(&a);
        assert!(hit_a, "a was refreshed and must survive");
        let (_, hit_b) = cache.get_or_compile(&b);
        assert!(!hit_b, "b was the LRU entry and must be gone");
    }

    #[test]
    fn index_evicts_fifo_and_tolerates_republication() {
        let index = PatternIndex::new(2);
        let a = Pattern::parse("A").unwrap();
        let b = Pattern::parse("B").unwrap();
        let c = Pattern::parse("C").unwrap();
        index.publish(&a, Arc::new(CompiledPattern::compile(&a)));
        index.publish(&b, Arc::new(CompiledPattern::compile(&b)));
        index.publish(&a, Arc::new(CompiledPattern::compile(&a))); // no-op
        assert_eq!(index.len(), 2);
        index.publish(&c, Arc::new(CompiledPattern::compile(&c))); // evicts a
        assert_eq!(index.len(), 2);
        assert!(index.get(&a).is_none(), "a was the oldest publication");
        assert!(index.get(&b).is_some());
        assert!(index.get(&c).is_some());
    }

    #[test]
    fn global_planning_merges_same_pattern_jobs_across_the_run() {
        // 8 jobs, one pattern, interleaved with nothing: global
        // planning packs them into a single uniform batch even though
        // the old static sharding would have split them over workers.
        let p = Pattern::parse("AB").unwrap();
        let jobs: Vec<Job> = (0..8)
            .map(|id| Job::new(id, p.clone(), text_from_letters("ABAB").unwrap()))
            .collect();
        let plan = plan_batches(&jobs, SuperWidth::W8.lanes());
        assert_eq!(plan.len(), 1);
        match &plan[0] {
            BatchDesc::Uniform { members } => assert_eq!(members.len(), 8),
            other => panic!("expected a uniform batch, got {other:?}"),
        }
        // And the batch count survives into the run's counters.
        let engine = ThroughputEngine::new(4, 8);
        let report = engine.run(&jobs).unwrap();
        assert_eq!(report.totals.batches, 1);
    }

    #[test]
    fn planner_splits_groups_at_the_lane_limit() {
        let p = Pattern::parse("AB").unwrap();
        let q = Pattern::parse("BA").unwrap();
        let lanes = SuperWidth::W1.lanes();
        let mut jobs: Vec<Job> = (0..(lanes as u64 + 3))
            .map(|id| Job::new(id, p.clone(), text_from_letters("AB").unwrap()))
            .collect();
        jobs.push(Job::new(999, q.clone(), text_from_letters("BA").unwrap()));
        let plan = plan_batches(&jobs, lanes);
        // 65+2 same-pattern jobs → two uniform batches; the singleton
        // rides a mixed batch of its own.
        assert_eq!(plan.len(), 3);
        match (&plan[0], &plan[1], &plan[2]) {
            (
                BatchDesc::Uniform { members: m0 },
                BatchDesc::Uniform { members: m1 },
                BatchDesc::Mixed { members: m2 },
            ) => {
                assert_eq!(m0.len(), lanes);
                assert_eq!(m1.len(), 3);
                assert_eq!(m2, &vec![jobs.len() - 1]);
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn stats_account_for_every_character() {
        let jobs = jobs_fixture();
        let total_chars: u64 = jobs.iter().map(|j| j.text.len() as u64).sum();
        let engine = ThroughputEngine::new(3, 8);
        let report = engine.run(&jobs).unwrap();
        assert_eq!(report.totals.chars, total_chars);
        let worker_chars: u64 = report.workers.iter().map(|w| w.chars).sum();
        assert_eq!(worker_chars, total_chars);
        assert_eq!(report.totals.jobs, jobs.len() as u64);
        assert!(report.totals.lane_occupancy() > 0.0);
        assert!(report.totals.lane_occupancy() <= 1.0);
        // Per-batch slot accounting matches the configured width.
        assert_eq!(
            report.totals.lane_slots_total,
            report.totals.batches * engine.lanes_per_batch() as u64
        );
        let worker_slots: u64 = report.workers.iter().map(|w| w.lane_slots).sum();
        assert_eq!(worker_slots, report.totals.lane_slots_total);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs = jobs_fixture().into_iter().take(2).collect::<Vec<_>>();
        let engine = ThroughputEngine::new(8, 4);
        let report = engine.run(&jobs).unwrap();
        assert_eq!(report.outputs.len(), 2);
        assert_eq!(report.workers.len(), 8);
    }

    #[test]
    fn sinked_engine_reports_ground_truth_counts() {
        use crate::telemetry::MetricsRegistry;
        let jobs = jobs_fixture();
        let metrics = Arc::new(MetricsRegistry::new());
        let engine = ThroughputEngine::with_sink(2, 8, SinkHandle::new(metrics.clone()));
        let report = engine.run(&jobs).unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.jobs_started, jobs.len() as u64);
        assert_eq!(snap.jobs_completed, jobs.len() as u64);
        assert_eq!(snap.chars, report.totals.chars);
        let truth_matches: u64 = report.outputs.iter().map(|o| o.hits.count() as u64).sum();
        assert_eq!(snap.matches, truth_matches);
        assert_eq!(snap.batches, report.totals.batches);
        assert_eq!(snap.lane_slots_used, report.totals.lane_slots_used);
        assert_eq!(snap.lane_slots_total, report.totals.lane_slots_total);
        assert_eq!(snap.batch_occupancy.count, report.totals.batches);
        assert_eq!(snap.batch_occupancy.sum, report.totals.lane_slots_used);
        // The dispatch announcement is folded into the registry.
        assert_eq!(snap.superplane_words, engine.width().words() as u64);
        assert_eq!(
            snap.dispatch_portable + snap.dispatch_avx2 + snap.dispatch_avx512,
            1
        );
        // The engine samples its rate window after each run.
        assert_eq!(engine.lifetime_chars(), report.totals.chars);
        assert!(engine.windowed_chars_per_sec() >= 0.0);
    }

    #[test]
    fn empty_job_list_yields_empty_report() {
        let engine = ThroughputEngine::new(2, 4);
        let report = engine.run(&[]).unwrap();
        assert!(report.outputs.is_empty());
        assert_eq!(report.totals.chars, 0);
        assert_eq!(report.workers.len(), 2);
    }
}
