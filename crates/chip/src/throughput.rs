//! Multi-stream job scheduling over the bit-plane batch engine.
//!
//! The paper's throughput claim (§1: one character every 250 ns,
//! "higher than the memory bandwidth of most conventional computers")
//! describes a chip serving *one* stream very fast. A host with many
//! concurrent search jobs — the ROADMAP's "heavy traffic" scenario —
//! wants the aggregate rate instead, and the bit-plane engine of
//! [`pm_systolic::batch`] supplies it: 64 independent streams per
//! machine word. This module is the host-side scheduler that keeps
//! those lanes full:
//!
//! * [`ThroughputEngine::run`] shards N incoming [`Job`]s across
//!   `std::thread` workers;
//! * each worker groups its jobs by pattern, packs them 64 lanes to a
//!   word batch (same-pattern groups run on the zero-setup uniform
//!   path; leftover singletons share mixed batches), and steps every
//!   lane together;
//! * a [`PatternCache`] memoises pattern → control-bit-plane
//!   compilation with LRU eviction, so the setup cost the paper's
//!   §3.3.1 analysis worries about ("loading this pattern") is paid
//!   once per *distinct* pattern, not once per job;
//! * per-worker [`WorkerStats`] and whole-run rates (chars/sec, lane
//!   occupancy, cache hit rate) are surfaced through the
//!   [`counters`](crate::counters) module.
//!
//! Results are bit-identical to running every job alone through the
//! scalar array — property-tested against the executable spec.
//!
//! ```
//! use pm_chip::throughput::{Job, ThroughputEngine};
//! use pm_systolic::symbol::{Pattern, text_from_letters};
//!
//! # fn main() -> Result<(), pm_systolic::Error> {
//! let pattern = Pattern::parse("AXC")?;
//! let jobs: Vec<Job> = (0..3)
//!     .map(|id| Job::new(id, pattern.clone(), text_from_letters("ABCAACCAB").unwrap()))
//!     .collect();
//! let engine = ThroughputEngine::new(2, 16);
//! let report = engine.run(&jobs)?;
//! assert_eq!(report.outputs[0].hits.ending_positions(), vec![2, 5, 6]);
//! assert_eq!(report.totals.jobs, 3);
//! let again = engine.run(&jobs)?; // the compiled planes are cached now
//! assert_eq!(again.totals.cache_misses, 0);
//! # Ok(())
//! # }
//! ```

use crate::counters::{Counter, CounterSnapshot, RateWindow, ThroughputCounters};
use pm_systolic::batch::{match_lanes, match_uniform, CompiledPattern, LANES};
use pm_systolic::engine::MatchBits;
use pm_systolic::error::Error;
use pm_systolic::symbol::{Pattern, Symbol};
use pm_systolic::telemetry::{SinkHandle, TraceEvent};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default sliding window for [`ThroughputEngine::windowed_chars_per_sec`].
const RATE_WINDOW: Duration = Duration::from_secs(30);

/// One incoming unit of work: match `pattern` against `text`.
#[derive(Debug, Clone)]
pub struct Job {
    /// Caller-chosen identifier, echoed in the [`JobOutput`].
    pub id: u64,
    /// The pattern to search for (wild cards allowed).
    pub pattern: Pattern,
    /// The text stream to search.
    pub text: Vec<Symbol>,
}

impl Job {
    /// Bundles a job.
    pub fn new(id: u64, pattern: Pattern, text: Vec<Symbol>) -> Self {
        Job { id, pattern, text }
    }
}

/// The completed result of one [`Job`].
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The job's identifier.
    pub id: u64,
    /// One result bit per text position, as from the scalar matcher.
    pub hits: MatchBits,
}

/// An LRU cache of compiled pattern control planes, keyed by pattern.
///
/// Compilation walks the pattern and allocates its broadcast planes;
/// a hot service sees the same handful of patterns over and over, so
/// the cache turns per-job setup into per-*distinct*-pattern setup.
///
/// ```
/// use pm_chip::throughput::PatternCache;
/// use pm_systolic::symbol::Pattern;
///
/// let mut cache = PatternCache::new(2);
/// let a = Pattern::parse("AB").unwrap();
/// let (_, hit) = cache.get_or_compile(&a);
/// assert!(!hit); // first sight compiles
/// let (_, hit) = cache.get_or_compile(&a);
/// assert!(hit); // second is served from cache
/// ```
#[derive(Debug)]
pub struct PatternCache {
    capacity: usize,
    tick: u64,
    map: HashMap<Pattern, CacheEntry>,
}

#[derive(Debug)]
struct CacheEntry {
    compiled: Arc<CompiledPattern>,
    last_used: u64,
}

impl PatternCache {
    /// A cache holding at most `capacity` compiled patterns (at least
    /// one).
    pub fn new(capacity: usize) -> Self {
        PatternCache {
            capacity: capacity.max(1),
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Returns the compiled planes for `pattern` and whether the lookup
    /// was a hit, compiling and (LRU-)evicting on a miss.
    pub fn get_or_compile(&mut self, pattern: &Pattern) -> (Arc<CompiledPattern>, bool) {
        self.tick += 1;
        if let Some(entry) = self.map.get_mut(pattern) {
            entry.last_used = self.tick;
            return (Arc::clone(&entry.compiled), true);
        }
        let compiled = Arc::new(CompiledPattern::compile(pattern));
        if self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(p, _)| p.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(
            pattern.clone(),
            CacheEntry {
                compiled: Arc::clone(&compiled),
                last_used: self.tick,
            },
        );
        (compiled, false)
    }

    /// Number of patterns currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of cached patterns.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// What one worker thread did during a run.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// Jobs this worker completed.
    pub jobs: u64,
    /// Text characters this worker pushed through the engine.
    pub chars: u64,
    /// Word batches this worker executed.
    pub batches: u64,
    /// Lane slots this worker filled, out of `64 × batches`.
    pub lanes_used: u64,
    /// Wall-clock time this worker spent matching.
    pub elapsed: Duration,
}

impl WorkerStats {
    /// This worker's character rate.
    pub fn chars_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.chars as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of this worker's lane slots that carried a stream.
    pub fn lane_occupancy(&self) -> f64 {
        let total = self.batches * LANES as u64;
        if total > 0 {
            self.lanes_used as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// The outcome of one [`ThroughputEngine::run`].
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// One output per input job, in input order.
    pub outputs: Vec<JobOutput>,
    /// Per-worker statistics (idle workers report zero batches).
    pub workers: Vec<WorkerStats>,
    /// Whole-run counters and derived rates.
    pub totals: CounterSnapshot,
}

/// Shards jobs across worker threads, each driving the bit-plane batch
/// engine with a shared compiled-pattern cache. The cache persists
/// across runs, so a long-lived engine keeps its hot patterns warm.
#[derive(Debug)]
pub struct ThroughputEngine {
    workers: usize,
    cache: Mutex<PatternCache>,
    sink: SinkHandle,
    /// Characters processed across every run of this engine's lifetime.
    lifetime_chars: Counter,
    /// Sliding window over `lifetime_chars`, sampled after each run.
    rate: RateWindow,
}

impl ThroughputEngine {
    /// An engine with `workers` threads (at least one) and a pattern
    /// cache of `cache_capacity` entries. Telemetry is disabled; use
    /// [`with_sink`](Self::with_sink) or [`set_sink`](Self::set_sink)
    /// to attach a sink.
    pub fn new(workers: usize, cache_capacity: usize) -> Self {
        Self::with_sink(workers, cache_capacity, SinkHandle::null())
    }

    /// As [`new`](Self::new), with a trace sink the workers emit job
    /// lifecycle, batch and cache events into.
    pub fn with_sink(workers: usize, cache_capacity: usize, sink: SinkHandle) -> Self {
        ThroughputEngine {
            workers: workers.max(1),
            cache: Mutex::new(PatternCache::new(cache_capacity)),
            sink,
            lifetime_chars: Counter::new(),
            rate: {
                let rate = RateWindow::new(RATE_WINDOW);
                rate.sample(0); // construction anchors the window
                rate
            },
        }
    }

    /// Replaces the trace sink (e.g. to enable telemetry on a running
    /// engine between runs).
    pub fn set_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of distinct patterns currently cached.
    pub fn cached_patterns(&self) -> usize {
        self.cache.lock().expect("cache poisoned").len()
    }

    /// Characters processed across this engine's whole lifetime.
    pub fn lifetime_chars(&self) -> u64 {
        self.lifetime_chars.get()
    }

    /// Current throughput over the last ~30 s of wall clock — the
    /// windowed rate a long-running scheduler should report, as opposed
    /// to the lifetime average a finite benchmark wants
    /// ([`CounterSnapshot::chars_per_sec`]). Returns 0.0 until two runs
    /// have completed inside the window.
    pub fn windowed_chars_per_sec(&self) -> f64 {
        self.rate.rate()
    }

    /// Runs every job to completion and reports results plus stats.
    /// Output `i` belongs to input job `i` regardless of which worker
    /// or word batch carried it.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (none are currently reachable: the
    /// scheduler never overfills a word batch).
    pub fn run(&self, jobs: &[Job]) -> Result<ThroughputReport, Error> {
        let started = Instant::now();
        let counters = ThroughputCounters::new();
        let mut outputs: Vec<Option<JobOutput>> = vec![None; jobs.len()];
        let mut worker_stats = Vec::with_capacity(self.workers);

        let shard = jobs.len().div_ceil(self.workers).max(1);
        let shards: Vec<(usize, &[Job])> = jobs
            .chunks(shard)
            .enumerate()
            .map(|(w, chunk)| (w * shard, chunk))
            .collect();

        let results: Vec<Result<WorkerYield, Error>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .enumerate()
                .map(|(w, &(offset, chunk))| {
                    let counters = &counters;
                    let cache = &self.cache;
                    let sink = &self.sink;
                    scope.spawn(move || worker_run(w, offset, chunk, cache, counters, sink))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        for res in results {
            let (outs, stats) = res?;
            for (idx, out) in outs {
                outputs[idx] = Some(out);
            }
            worker_stats.push(stats);
        }
        // Idle workers (more threads than shards) still appear in the
        // report, with empty stats.
        for w in worker_stats.len()..self.workers {
            worker_stats.push(WorkerStats {
                worker: w,
                jobs: 0,
                chars: 0,
                batches: 0,
                lanes_used: 0,
                elapsed: Duration::ZERO,
            });
        }
        worker_stats.sort_by_key(|s| s.worker);

        let outputs = outputs
            .into_iter()
            .map(|o| o.expect("every job produces an output"))
            .collect();
        let totals = counters.snapshot(started.elapsed());
        self.lifetime_chars.add(totals.chars);
        self.rate.sample(self.lifetime_chars.get());
        Ok(ThroughputReport {
            outputs,
            workers: worker_stats,
            totals,
        })
    }
}

/// What one worker hands back: outputs tagged with their global job
/// index, plus the worker's own statistics.
type WorkerYield = (Vec<(usize, JobOutput)>, WorkerStats);

/// One worker: group its shard by pattern, fill word batches, match.
fn worker_run(
    worker: usize,
    offset: usize,
    chunk: &[Job],
    cache: &Mutex<PatternCache>,
    counters: &ThroughputCounters,
    sink: &SinkHandle,
) -> Result<WorkerYield, Error> {
    let started = Instant::now();
    if sink.enabled() {
        for job in chunk {
            sink.record(TraceEvent::JobStarted {
                job: job.id,
                worker: worker as u32,
            });
        }
    }
    let mut stats = WorkerStats {
        worker,
        jobs: 0,
        chars: 0,
        batches: 0,
        lanes_used: 0,
        elapsed: Duration::ZERO,
    };
    let mut outs: Vec<(usize, JobOutput)> = Vec::with_capacity(chunk.len());

    // Group this shard's jobs by pattern, preserving first-seen order
    // so batches are deterministic for a given sharding.
    let mut order: Vec<&Pattern> = Vec::new();
    let mut groups: HashMap<&Pattern, Vec<usize>> = HashMap::new();
    for (i, job) in chunk.iter().enumerate() {
        groups.entry(&job.pattern).or_insert_with(|| {
            order.push(&job.pattern);
            Vec::new()
        });
        groups.get_mut(&job.pattern).expect("just inserted").push(i);
    }

    // Same-pattern groups of two or more ride the zero-setup uniform
    // path; singletons pool into mixed batches below.
    let mut singles: Vec<(usize, Arc<CompiledPattern>)> = Vec::new();
    for pattern in order {
        let members = &groups[pattern];
        let (compiled, hit) = cache
            .lock()
            .expect("cache poisoned")
            .get_or_compile(pattern);
        if hit {
            counters.cache_hits.add(1);
        } else {
            counters.cache_misses.add(1);
        }
        sink.record(TraceEvent::CacheLookup { hit });
        if members.len() == 1 {
            singles.push((members[0], compiled));
            continue;
        }
        for batch in members.chunks(LANES) {
            let texts: Vec<&[Symbol]> = batch.iter().map(|&i| chunk[i].text.as_slice()).collect();
            let timer = sink.enabled().then(Instant::now);
            let hits = match_uniform(&compiled, &texts)?;
            let micros = elapsed_micros(timer);
            record_batch(
                batch, hits, chunk, offset, &mut outs, &mut stats, counters, sink, micros,
            );
        }
    }
    for batch in singles.chunks(LANES) {
        let lanes: Vec<(&CompiledPattern, &[Symbol])> = batch
            .iter()
            .map(|(i, c)| (c.as_ref(), chunk[*i].text.as_slice()))
            .collect();
        let timer = sink.enabled().then(Instant::now);
        let hits = match_lanes(&lanes)?;
        let micros = elapsed_micros(timer);
        let members: Vec<usize> = batch.iter().map(|&(i, _)| i).collect();
        record_batch(
            &members, hits, chunk, offset, &mut outs, &mut stats, counters, sink, micros,
        );
    }

    stats.elapsed = started.elapsed();
    Ok((outs, stats))
}

/// Microseconds since an optional batch timer was armed (0 when the
/// sink was disabled and no timer ran).
fn elapsed_micros(timer: Option<Instant>) -> u64 {
    timer.map_or(0, |t| t.elapsed().as_micros() as u64)
}

/// Books one completed word batch into outputs, stats, counters and
/// the trace sink.
#[allow(clippy::too_many_arguments)]
fn record_batch(
    members: &[usize],
    hits: Vec<MatchBits>,
    chunk: &[Job],
    offset: usize,
    outs: &mut Vec<(usize, JobOutput)>,
    stats: &mut WorkerStats,
    counters: &ThroughputCounters,
    sink: &SinkHandle,
    micros: u64,
) {
    debug_assert_eq!(members.len(), hits.len());
    let traced = sink.enabled();
    let mut batch_chars = 0u64;
    let mut steps = 0u64;
    for (&i, hit) in members.iter().zip(hits) {
        let job = &chunk[i];
        batch_chars += job.text.len() as u64;
        steps = steps.max(job.text.len() as u64);
        if traced {
            sink.record(TraceEvent::JobCompleted {
                job: job.id,
                worker: stats.worker as u32,
                chars: job.text.len() as u64,
                matches: hit.count() as u64,
            });
        }
        outs.push((
            offset + i,
            JobOutput {
                id: job.id,
                hits: hit,
            },
        ));
    }
    if traced {
        sink.record(TraceEvent::BatchExecuted {
            worker: stats.worker as u32,
            lanes: members.len() as u32,
            steps,
            micros,
        });
    }
    stats.jobs += members.len() as u64;
    stats.chars += batch_chars;
    stats.batches += 1;
    stats.lanes_used += members.len() as u64;
    counters.jobs.add(members.len() as u64);
    counters.chars.add(batch_chars);
    counters.batches.add(1);
    counters.lane_slots_used.add(members.len() as u64);
    counters.lane_slots_total.add(LANES as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::text_from_letters;

    fn jobs_fixture() -> Vec<Job> {
        let p1 = Pattern::parse("AXC").unwrap();
        let p2 = Pattern::parse("BB").unwrap();
        let p3 = Pattern::parse("CABX").unwrap();
        let texts = ["ABCAACCAB", "BBABBB", "CABACABC", "", "AACCA"];
        let mut jobs = Vec::new();
        for (i, t) in texts.iter().enumerate() {
            for (j, p) in [&p1, &p2, &p3].iter().enumerate() {
                jobs.push(Job::new(
                    (i * 3 + j) as u64,
                    (*p).clone(),
                    text_from_letters(t).unwrap(),
                ));
            }
        }
        jobs
    }

    #[test]
    fn outputs_equal_spec_for_any_worker_count() {
        let jobs = jobs_fixture();
        for workers in [1, 2, 3, 7] {
            let engine = ThroughputEngine::new(workers, 8);
            let report = engine.run(&jobs).unwrap();
            assert_eq!(report.outputs.len(), jobs.len());
            for (out, job) in report.outputs.iter().zip(&jobs) {
                assert_eq!(out.id, job.id);
                assert_eq!(
                    out.hits.bits(),
                    match_spec(&job.text, &job.pattern),
                    "job {} under {workers} workers",
                    job.id
                );
            }
        }
    }

    #[test]
    fn repeated_patterns_hit_the_cache() {
        let jobs = jobs_fixture();
        let engine = ThroughputEngine::new(1, 8);
        let report = engine.run(&jobs).unwrap();
        // 3 distinct patterns; one worker sees each exactly once.
        assert_eq!(report.totals.cache_misses, 3);
        assert_eq!(engine.cached_patterns(), 3);
        // A second run over the same patterns is all hits.
        let report2 = engine.run(&jobs).unwrap();
        assert_eq!(report2.totals.cache_misses, 0);
        assert!(report2.totals.cache_hit_rate() == 1.0);
    }

    #[test]
    fn lru_evicts_the_coldest_pattern() {
        let mut cache = PatternCache::new(2);
        let a = Pattern::parse("A").unwrap();
        let b = Pattern::parse("B").unwrap();
        let c = Pattern::parse("C").unwrap();
        cache.get_or_compile(&a);
        cache.get_or_compile(&b);
        cache.get_or_compile(&a); // refresh a; b is now coldest
        cache.get_or_compile(&c); // evicts b
        assert_eq!(cache.len(), 2);
        let (_, hit_a) = cache.get_or_compile(&a);
        assert!(hit_a, "a was refreshed and must survive");
        let (_, hit_b) = cache.get_or_compile(&b);
        assert!(!hit_b, "b was the LRU entry and must be gone");
    }

    #[test]
    fn stats_account_for_every_character() {
        let jobs = jobs_fixture();
        let total_chars: u64 = jobs.iter().map(|j| j.text.len() as u64).sum();
        let engine = ThroughputEngine::new(3, 8);
        let report = engine.run(&jobs).unwrap();
        assert_eq!(report.totals.chars, total_chars);
        let worker_chars: u64 = report.workers.iter().map(|w| w.chars).sum();
        assert_eq!(worker_chars, total_chars);
        assert_eq!(report.totals.jobs, jobs.len() as u64);
        assert!(report.totals.lane_occupancy() > 0.0);
        assert!(report.totals.lane_occupancy() <= 1.0);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs = jobs_fixture().into_iter().take(2).collect::<Vec<_>>();
        let engine = ThroughputEngine::new(8, 4);
        let report = engine.run(&jobs).unwrap();
        assert_eq!(report.outputs.len(), 2);
        assert_eq!(report.workers.len(), 8);
    }

    #[test]
    fn sinked_engine_reports_ground_truth_counts() {
        use crate::telemetry::MetricsRegistry;
        let jobs = jobs_fixture();
        let metrics = Arc::new(MetricsRegistry::new());
        let engine = ThroughputEngine::with_sink(2, 8, SinkHandle::new(metrics.clone()));
        let report = engine.run(&jobs).unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.jobs_started, jobs.len() as u64);
        assert_eq!(snap.jobs_completed, jobs.len() as u64);
        assert_eq!(snap.chars, report.totals.chars);
        let truth_matches: u64 = report.outputs.iter().map(|o| o.hits.count() as u64).sum();
        assert_eq!(snap.matches, truth_matches);
        assert_eq!(snap.batches, report.totals.batches);
        assert_eq!(snap.lane_slots_used, report.totals.lane_slots_used);
        assert_eq!(snap.batch_occupancy.count, report.totals.batches);
        assert_eq!(snap.batch_occupancy.sum, report.totals.lane_slots_used);
        // The engine samples its rate window after each run.
        assert_eq!(engine.lifetime_chars(), report.totals.chars);
        assert!(engine.windowed_chars_per_sec() >= 0.0);
    }

    #[test]
    fn empty_job_list_yields_empty_report() {
        let engine = ThroughputEngine::new(2, 4);
        let report = engine.run(&[]).unwrap();
        assert!(report.outputs.is_empty());
        assert_eq!(report.totals.chars, 0);
    }
}
