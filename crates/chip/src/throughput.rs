//! Multi-stream job scheduling over the bit-plane batch engines.
//!
//! The paper's throughput claim (§1: one character every 250 ns,
//! "higher than the memory bandwidth of most conventional computers")
//! describes a chip serving *one* stream very fast. A host with many
//! concurrent search jobs — the ROADMAP's "heavy traffic" scenario —
//! wants the aggregate rate instead, and the bit-plane engines supply
//! it: 64 independent streams per machine word
//! ([`pm_systolic::batch`]), up to 512 per superplane
//! ([`pm_systolic::superplane`]). This module is the host-side
//! scheduler that keeps those lanes full:
//!
//! * [`ThroughputEngine::run`] plans batches *globally* — every job is
//!   grouped by pattern across the whole submission, so same-pattern
//!   jobs land in the same zero-setup uniform batch no matter which
//!   worker would have owned them under static sharding; leftover
//!   singletons pool into mixed batches;
//! * batches go onto per-worker deques and workers *steal*: each pops
//!   its own deque from the front and raids the back of its neighbours'
//!   when it runs dry, so a straggler batch never idles the rest of the
//!   pool;
//! * the batch width is a [`SuperWidth`] — one `u64` plane (64 lanes)
//!   or a 4- or 8-word superplane (256 / 512 lanes, the default) whose
//!   kernel is runtime-dispatched to AVX2/AVX-512 where the CPU has
//!   them ([`simd_level`]); the choice is announced once per run via
//!   [`TraceEvent::DispatchSelected`] and echoed in the
//!   [`ThroughputReport`];
//! * pattern → control-bit-plane compilation is memoised twice over: a
//!   private [`PatternCache`] per worker (no lock at all on the hot
//!   path) backed by a shared read-mostly [`PatternIndex`] that
//!   persists across runs, so the setup cost the paper's §3.3.1
//!   analysis worries about ("loading this pattern") is paid once per
//!   *distinct* pattern, not once per job — and never behind a global
//!   mutex;
//! * per-worker [`WorkerStats`] and whole-run rates (chars/sec, lane
//!   occupancy, cache hit rate) are surfaced through the
//!   [`counters`](crate::counters) module.
//!
//! Results are bit-identical to running every job alone through the
//! scalar array — property-tested against the executable spec.
//!
//! ```
//! use pm_chip::throughput::{Job, ThroughputEngine};
//! use pm_systolic::symbol::{Pattern, text_from_letters};
//!
//! # fn main() -> Result<(), pm_systolic::Error> {
//! let pattern = Pattern::parse("AXC")?;
//! let jobs: Vec<Job> = (0..3)
//!     .map(|id| Job::new(id, pattern.clone(), text_from_letters("ABCAACCAB").unwrap()))
//!     .collect();
//! let engine = ThroughputEngine::new(2, 16);
//! let report = engine.run(&jobs)?;
//! assert_eq!(report.outputs[0].hits.ending_positions(), vec![2, 5, 6]);
//! assert_eq!(report.totals.jobs, 3);
//! let again = engine.run(&jobs)?; // the compiled planes are indexed now
//! assert_eq!(again.totals.cache_misses, 0);
//! # Ok(())
//! # }
//! ```

use crate::counters::{Counter, CounterSnapshot, RateWindow, ThroughputCounters};
use crate::faults::{corrupt_bits, mix, FaultPlan, PlaneFault, StickyFault, XorShift64};
use crate::host::RetryPolicy;
use pm_matchers::software_fallback;
use pm_systolic::batch::{match_lanes, match_uniform, CompiledPattern};
use pm_systolic::engine::MatchBits;
use pm_systolic::error::Error;
use pm_systolic::spec::match_spec;
use pm_systolic::superplane::{
    lanes_of, match_lanes_wide, match_uniform_wide, simd_level, SimdLevel,
};
use pm_systolic::symbol::{text_from_letters, Pattern, Symbol};
use pm_systolic::telemetry::{SinkHandle, TraceEvent};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Default sliding window for [`ThroughputEngine::windowed_chars_per_sec`].
const RATE_WINDOW: Duration = Duration::from_secs(30);

/// How wide one batch is: the number of 64-lane machine words packed
/// side by side in each bit plane.
///
/// [`W1`](SuperWidth::W1) is the original `u64` engine of
/// [`pm_systolic::batch`]; [`W4`](SuperWidth::W4) and
/// [`W8`](SuperWidth::W8) are the superplane widths of
/// [`pm_systolic::superplane`], whose kernels runtime-dispatch to
/// AVX2/AVX-512 on CPUs that have them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SuperWidth {
    /// One `u64` word per plane: 64 lanes per batch.
    W1,
    /// Four words per plane: 256 lanes per batch.
    W4,
    /// Eight words per plane: 512 lanes per batch (the default).
    #[default]
    W8,
}

impl SuperWidth {
    /// Plane width in 64-bit words.
    pub const fn words(self) -> usize {
        match self {
            SuperWidth::W1 => 1,
            SuperWidth::W4 => 4,
            SuperWidth::W8 => 8,
        }
    }

    /// Lane slots one batch of this width offers.
    pub const fn lanes(self) -> usize {
        lanes_of(self.words())
    }

    /// Short human label for figures and reports.
    pub const fn label(self) -> &'static str {
        match self {
            SuperWidth::W1 => "u64",
            SuperWidth::W4 => "superplane-4",
            SuperWidth::W8 => "superplane-8",
        }
    }
}

impl fmt::Display for SuperWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// One incoming unit of work: match `pattern` against `text`.
#[derive(Debug, Clone)]
pub struct Job {
    /// Caller-chosen identifier, echoed in the [`JobOutput`].
    pub id: u64,
    /// The pattern to search for (wild cards allowed).
    pub pattern: Pattern,
    /// The text stream to search.
    pub text: Vec<Symbol>,
}

impl Job {
    /// Bundles a job.
    pub fn new(id: u64, pattern: Pattern, text: Vec<Symbol>) -> Self {
        Job { id, pattern, text }
    }

    /// A borrowed view of this job for the zero-copy entry points.
    pub fn to_ref(&self) -> JobRef<'_> {
        JobRef {
            id: self.id,
            pattern: &self.pattern,
            text: &self.text,
        }
    }
}

/// A borrowed unit of work: the zero-copy twin of [`Job`].
///
/// The ingestion layer ([`crate::ingest`]) and the
/// [`Router`](crate::shard::Router) hand the scheduler `&[Symbol]`
/// slices straight out of a paged corpus or a client buffer; nothing
/// on the batch path needs an owned `Vec`, so
/// [`ThroughputEngine::run_refs`] takes these and [`Job`] is just the
/// owning convenience wrapper.
#[derive(Debug, Clone, Copy)]
pub struct JobRef<'a> {
    /// Caller-chosen identifier, echoed in the [`JobOutput`].
    pub id: u64,
    /// The pattern to search for (wild cards allowed).
    pub pattern: &'a Pattern,
    /// The text slice to search.
    pub text: &'a [Symbol],
}

/// The completed result of one [`Job`].
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The job's identifier.
    pub id: u64,
    /// One result bit per text position, as from the scalar matcher.
    pub hits: MatchBits,
}

/// An LRU cache of compiled pattern control planes, keyed by pattern.
///
/// Compilation walks the pattern and allocates its broadcast planes;
/// a hot service sees the same handful of patterns over and over, so
/// the cache turns per-job setup into per-*distinct*-pattern setup.
/// Each scheduler worker owns one privately (no locking); the shared
/// tier behind it is a [`PatternIndex`].
///
/// ```
/// use pm_chip::throughput::PatternCache;
/// use pm_systolic::symbol::Pattern;
///
/// let mut cache = PatternCache::new(2);
/// let a = Pattern::parse("AB").unwrap();
/// let (_, hit) = cache.get_or_compile(&a);
/// assert!(!hit); // first sight compiles
/// let (_, hit) = cache.get_or_compile(&a);
/// assert!(hit); // second is served from cache
/// ```
#[derive(Debug)]
pub struct PatternCache {
    capacity: usize,
    tick: u64,
    map: HashMap<Pattern, CacheEntry>,
}

#[derive(Debug)]
struct CacheEntry {
    compiled: Arc<CompiledPattern>,
    last_used: u64,
}

impl PatternCache {
    /// A cache holding at most `capacity` compiled patterns (at least
    /// one).
    pub fn new(capacity: usize) -> Self {
        PatternCache {
            capacity: capacity.max(1),
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Looks `pattern` up, refreshing its recency on a hit.
    pub fn get(&mut self, pattern: &Pattern) -> Option<Arc<CompiledPattern>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(pattern).map(|entry| {
            entry.last_used = tick;
            Arc::clone(&entry.compiled)
        })
    }

    /// Stores an already-compiled pattern, evicting the least recently
    /// used entry if the cache is full.
    pub fn insert(&mut self, pattern: &Pattern, compiled: Arc<CompiledPattern>) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(pattern) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(p, _)| p.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(
            pattern.clone(),
            CacheEntry {
                compiled,
                last_used: self.tick,
            },
        );
    }

    /// Returns the compiled planes for `pattern` and whether the lookup
    /// was a hit, compiling and (LRU-)evicting on a miss.
    pub fn get_or_compile(&mut self, pattern: &Pattern) -> (Arc<CompiledPattern>, bool) {
        if let Some(compiled) = self.get(pattern) {
            return (compiled, true);
        }
        let compiled = Arc::new(CompiledPattern::compile(pattern));
        self.insert(pattern, Arc::clone(&compiled));
        (compiled, false)
    }

    /// Number of patterns currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of cached patterns.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// The shared, read-mostly tier of pattern memoisation: a
/// `RwLock`-guarded map that persists across runs of a
/// [`ThroughputEngine`].
///
/// Workers consult it only after missing their private
/// [`PatternCache`], take the write lock only to publish a freshly
/// compiled pattern, and never hold any lock while matching — the old
/// global `Mutex<PatternCache>` serialised every lookup of every
/// worker through one point. Eviction is FIFO by publication order
/// (recency lives in the per-worker caches; the index only has to
/// bound memory).
#[derive(Debug)]
pub struct PatternIndex {
    capacity: usize,
    inner: RwLock<IndexInner>,
}

#[derive(Debug, Default)]
struct IndexInner {
    map: HashMap<Pattern, Arc<CompiledPattern>>,
    fifo: VecDeque<Pattern>,
}

impl PatternIndex {
    /// An index holding at most `capacity` compiled patterns (at least
    /// one).
    pub fn new(capacity: usize) -> Self {
        PatternIndex {
            capacity: capacity.max(1),
            inner: RwLock::new(IndexInner::default()),
        }
    }

    /// Looks `pattern` up under the read lock.
    pub fn get(&self, pattern: &Pattern) -> Option<Arc<CompiledPattern>> {
        self.inner
            .read()
            .expect("index poisoned")
            .map
            .get(pattern)
            .cloned()
    }

    /// Publishes a compiled pattern under the write lock, evicting the
    /// oldest publication at capacity. Concurrent publishers of the
    /// same pattern are harmless: the first insert wins and later ones
    /// are no-ops.
    pub fn publish(&self, pattern: &Pattern, compiled: Arc<CompiledPattern>) {
        let mut inner = self.inner.write().expect("index poisoned");
        if inner.map.contains_key(pattern) {
            return;
        }
        while inner.map.len() >= self.capacity {
            match inner.fifo.pop_front() {
                Some(oldest) => {
                    inner.map.remove(&oldest);
                }
                None => break,
            }
        }
        inner.map.insert(pattern.clone(), compiled);
        inner.fifo.push_back(pattern.clone());
    }

    /// Number of patterns currently indexed.
    pub fn len(&self) -> usize {
        self.inner.read().expect("index poisoned").map.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of indexed patterns.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// What one worker thread did during a run.
#[derive(Debug, Clone)]
pub struct WorkerStats {
    /// Worker index (0-based).
    pub worker: usize,
    /// Jobs this worker completed.
    pub jobs: u64,
    /// Text characters this worker pushed through the engine.
    pub chars: u64,
    /// Batches this worker executed.
    pub batches: u64,
    /// Lane slots this worker filled, out of `lane_slots`.
    pub lanes_used: u64,
    /// Lane slots this worker's batches offered (64 per `u64` batch,
    /// `W × 64` per width-`W` superplane batch).
    pub lane_slots: u64,
    /// Wall-clock time this worker spent matching.
    pub elapsed: Duration,
}

impl WorkerStats {
    fn idle(worker: usize) -> Self {
        WorkerStats {
            worker,
            jobs: 0,
            chars: 0,
            batches: 0,
            lanes_used: 0,
            lane_slots: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// This worker's character rate.
    pub fn chars_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.chars as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of this worker's lane slots that carried a stream.
    pub fn lane_occupancy(&self) -> f64 {
        if self.lane_slots > 0 {
            self.lanes_used as f64 / self.lane_slots as f64
        } else {
            0.0
        }
    }
}

/// The outcome of one [`ThroughputEngine::run`].
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// One output per input job, in input order.
    pub outputs: Vec<JobOutput>,
    /// Per-worker statistics (idle workers report zero batches).
    pub workers: Vec<WorkerStats>,
    /// Whole-run counters and derived rates.
    pub totals: CounterSnapshot,
    /// The instruction-set level the superplane kernels dispatched to
    /// this run (process-wide; `Portable` also covers the `u64` width,
    /// which has no specialised kernels).
    pub simd: SimdLevel,
    /// Lane slots per batch at the width this run used.
    pub lanes_per_batch: usize,
    /// Wall-clock microseconds the global batch planner spent before
    /// any worker started — the scheduler-overhead half of the
    /// router's `planner_overhead_frac` accounting.
    pub plan_micros: u64,
    /// What the fault-tolerant scheduler saw and did, when a
    /// [`ResiliencePolicy`] is installed (`None` on the fast path).
    pub resilience: Option<ResilienceReport>,
}

/// Tunables of the fault-tolerant scheduler layer. Installing one via
/// [`ThroughputEngine::set_resilience`] switches
/// [`run`](ThroughputEngine::run) from the fast path to the resilient
/// path: workers buffer results instead of committing them, every
/// batch runs under `catch_unwind` and a wall-clock watchdog, a sampled
/// lane is periodically re-checked against the scalar spec, and each
/// worker must pass an exit known-answer test before its buffered
/// results commit. Detected faults void the worker's results and send
/// its jobs down the recovery ladder (retry → narrower width → software
/// fallback), so committed output is spec-identical even under active
/// fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResiliencePolicy {
    /// Re-run one random lane of every Nth batch (per worker) through
    /// the scalar spec; 0 disables sampling (the exit known-answer test
    /// still gates commits).
    pub scrub_period_batches: u64,
    /// Wall-clock bound on one batch; a slower batch condemns the
    /// worker as stalled.
    pub watchdog: Duration,
    /// Backoff schedule for recovery-ladder retries (shares
    /// [`RetryPolicy`] with the single-stream host bus).
    pub retry: RetryPolicy,
    /// Clean batches required before the ladder climbs back up a rung.
    pub repromote_after: u64,
    /// Wall-clock length of one backoff beat.
    pub beat: Duration,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            scrub_period_batches: 4,
            watchdog: Duration::from_secs(2),
            retry: RetryPolicy::default(),
            repromote_after: 32,
            beat: Duration::from_micros(20),
        }
    }
}

/// What the resilient scheduler observed during one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceReport {
    /// Chaos-harness faults that fired in workers.
    pub faults_injected: u64,
    /// Sampled-lane scrubs that disagreed with the scalar spec.
    pub scrub_mismatches: u64,
    /// Quarantined workers and the label of what condemned each.
    pub quarantined: Vec<(usize, &'static str)>,
    /// Jobs whose first execution was voided and went to recovery.
    pub recovered_jobs: u64,
    /// Recovery-batch executions on hardware rungs (every attempt).
    pub retried_batches: u64,
    /// Ladder demotions this run (includes the move to software).
    pub demotions: u64,
    /// Ladder re-promotions this run.
    pub promotions: u64,
    /// Jobs that ended up on the software-fallback rung.
    pub fallback_jobs: u64,
    /// The engine's ladder rung after this run, as a superplane width
    /// in words (the next run's starting width).
    pub ladder_words: usize,
}

/// The engine's persistent position on the degradation ladder: an
/// index into [`ladder_rungs`] plus the count of consecutively clean
/// batches driving re-promotion.
#[derive(Debug, Default)]
struct LadderState {
    rung: AtomicUsize,
    clean: AtomicU64,
}

/// The hardware rungs below (and including) a starting width, widest
/// first; the software fallback sits below the last.
fn ladder_rungs(width: SuperWidth) -> &'static [SuperWidth] {
    match width {
        SuperWidth::W8 => &[SuperWidth::W8, SuperWidth::W4, SuperWidth::W1],
        SuperWidth::W4 => &[SuperWidth::W4, SuperWidth::W1],
        SuperWidth::W1 => &[SuperWidth::W1],
    }
}

/// One planned batch: global job indices that will advance together.
#[derive(Debug)]
enum BatchDesc {
    /// Every member shares one pattern — zero-setup uniform path.
    Uniform {
        /// Global indices into the run's job slice.
        members: Vec<usize>,
    },
    /// Members carry distinct patterns packed lane by lane.
    Mixed {
        /// Global indices into the run's job slice.
        members: Vec<usize>,
    },
}

/// Groups job indices by pattern, preserving first-seen order — the
/// shared first stage of the batch planner below and the
/// [`Router`](crate::shard::Router)'s affinity planner.
pub(crate) fn group_by_pattern<'a>(jobs: &[JobRef<'a>]) -> Vec<(&'a Pattern, Vec<usize>)> {
    let mut order: Vec<&Pattern> = Vec::new();
    let mut groups: HashMap<&Pattern, Vec<usize>> = HashMap::new();
    for (i, job) in jobs.iter().enumerate() {
        groups.entry(job.pattern).or_insert_with(|| {
            order.push(job.pattern);
            Vec::new()
        });
        groups.get_mut(job.pattern).expect("just inserted").push(i);
    }
    order
        .into_iter()
        .map(|p| {
            let members = groups.remove(p).expect("grouped above");
            (p, members)
        })
        .collect()
}

/// Groups all jobs by pattern (first-seen order) and cuts the groups
/// into width-sized batches. Groups of two or more ride the uniform
/// path; singletons pool into mixed batches, length-bucketed via
/// [`plan::bucket_by_len`](crate::plan::bucket_by_len) so one long
/// straggler can't inflate the `kmax` of every mixed batch it touches
/// — the dictionary planner in `pm_chip::dictionary` leans on the same
/// bucketing. Global planning is what lets same-pattern jobs share a
/// batch regardless of submission order — the old per-shard grouping
/// could only merge jobs that happened to land on the same worker.
fn plan_batches(jobs: &[JobRef<'_>], lanes: usize) -> Vec<BatchDesc> {
    let mut plan = Vec::new();
    let mut singles: Vec<usize> = Vec::new();
    for (_, members) in group_by_pattern(jobs) {
        if members.len() == 1 {
            singles.push(members[0]);
            continue;
        }
        for batch in members.chunks(lanes) {
            plan.push(BatchDesc::Uniform {
                members: batch.to_vec(),
            });
        }
    }
    crate::plan::bucket_by_len(&mut singles, |&i| jobs[i].pattern.len());
    for batch in singles.chunks(lanes) {
        plan.push(BatchDesc::Mixed {
            members: batch.to_vec(),
        });
    }
    plan
}

/// Per-worker deques of batch indices with work stealing: a worker
/// drains its own deque from the front and, when empty, steals from
/// the *back* of its neighbours' — the classic arrangement that keeps
/// owner and thief on opposite ends.
struct WorkQueue {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl WorkQueue {
    /// Distributes `batches` batch indices round-robin over `workers`
    /// deques.
    fn new(batches: usize, workers: usize) -> Self {
        let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for b in 0..batches {
            deques[b % workers].push_back(b);
        }
        WorkQueue {
            deques: deques.into_iter().map(Mutex::new).collect(),
        }
    }

    /// The next batch for `worker`: its own front, else a steal from
    /// another deque's back (the victim's index rides along so the
    /// caller can book the steal). `None` means every batch is claimed.
    fn next(&self, worker: usize) -> Option<(usize, Option<usize>)> {
        if let Some(b) = self.deques[worker]
            .lock()
            .expect("queue poisoned")
            .pop_front()
        {
            return Some((b, None));
        }
        let n = self.deques.len();
        for off in 1..n {
            let victim = (worker + off) % n;
            if let Some(b) = self.deques[victim]
                .lock()
                .expect("queue poisoned")
                .pop_back()
            {
                return Some((b, Some(victim)));
            }
        }
        None
    }
}

/// Plans batches globally, then lets worker threads pull them from
/// work-stealing deques, each driving a bit-plane batch engine of the
/// configured [`SuperWidth`]. Compiled patterns persist across runs in
/// a shared [`PatternIndex`] behind per-worker [`PatternCache`]s.
#[derive(Debug)]
pub struct ThroughputEngine {
    workers: usize,
    width: SuperWidth,
    cache_capacity: usize,
    index: PatternIndex,
    sink: SinkHandle,
    /// Characters processed across every run of this engine's lifetime.
    lifetime_chars: Counter,
    /// Sliding window over `lifetime_chars`, sampled after each run.
    rate: RateWindow,
    /// Fault-tolerant scheduling, when installed.
    resilience: Option<ResiliencePolicy>,
    /// Seeded chaos campaign, when armed (orthogonal to `resilience`:
    /// a plan without a policy injects faults nobody contains, which is
    /// what the fast-path regression tests want).
    chaos: Option<FaultPlan>,
    /// Persistent degradation-ladder position across runs.
    ladder: LadderState,
}

impl ThroughputEngine {
    /// An engine with `workers` threads (at least one) and pattern
    /// caches of `cache_capacity` entries each (one shared index plus
    /// one private cache per worker). Batches default to the widest
    /// superplane ([`SuperWidth::W8`]); telemetry is disabled; use
    /// [`with_sink`](Self::with_sink) or [`set_sink`](Self::set_sink)
    /// to attach a sink and [`set_width`](Self::set_width) to narrow
    /// the batches.
    pub fn new(workers: usize, cache_capacity: usize) -> Self {
        Self::with_sink(workers, cache_capacity, SinkHandle::null())
    }

    /// As [`new`](Self::new), with a trace sink the workers emit job
    /// lifecycle, batch, dispatch and cache events into.
    pub fn with_sink(workers: usize, cache_capacity: usize, sink: SinkHandle) -> Self {
        ThroughputEngine {
            workers: workers.max(1),
            width: SuperWidth::default(),
            cache_capacity: cache_capacity.max(1),
            index: PatternIndex::new(cache_capacity),
            sink,
            lifetime_chars: Counter::new(),
            rate: {
                let rate = RateWindow::new(RATE_WINDOW);
                rate.sample(0); // construction anchors the window
                rate
            },
            resilience: None,
            chaos: None,
            ladder: LadderState::default(),
        }
    }

    /// Replaces the trace sink (e.g. to enable telemetry on a running
    /// engine between runs).
    pub fn set_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    /// Selects the batch width for subsequent runs. Also resets the
    /// degradation ladder, whose rungs descend from this width.
    pub fn set_width(&mut self, width: SuperWidth) {
        self.width = width;
        self.ladder.rung.store(0, Ordering::Relaxed);
        self.ladder.clean.store(0, Ordering::Relaxed);
    }

    /// Installs (or removes) the fault-tolerant scheduler layer.
    pub fn set_resilience(&mut self, policy: Option<ResiliencePolicy>) {
        self.resilience = policy;
    }

    /// The installed resilience policy, if any.
    pub fn resilience(&self) -> Option<ResiliencePolicy> {
        self.resilience
    }

    /// Arms (or disarms) a seeded chaos campaign. A plan without a
    /// resilience policy injects faults nobody contains: data faults
    /// silently corrupt results and panics surface as
    /// [`Error::WorkerPanicked`] — the harness the regression tests
    /// point at the fast path. With a policy installed, the same plan
    /// exercises detection and recovery instead.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.chaos = plan;
    }

    /// The armed chaos plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.chaos.as_ref()
    }

    /// The width the *next* resilient run will use: the configured
    /// width lowered to the ladder's current rung. The fast path
    /// ignores the ladder.
    pub fn ladder_width(&self) -> SuperWidth {
        let rungs = ladder_rungs(self.width);
        rungs[self
            .ladder
            .rung
            .load(Ordering::Relaxed)
            .min(rungs.len() - 1)]
    }

    /// The batch width subsequent runs will use.
    pub fn width(&self) -> SuperWidth {
        self.width
    }

    /// Lane slots per batch at the current width.
    pub fn lanes_per_batch(&self) -> usize {
        self.width.lanes()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of distinct patterns currently in the shared index.
    pub fn cached_patterns(&self) -> usize {
        self.index.len()
    }

    /// Characters processed across this engine's whole lifetime.
    pub fn lifetime_chars(&self) -> u64 {
        self.lifetime_chars.get()
    }

    /// Current throughput over the last ~30 s of wall clock — the
    /// windowed rate a long-running scheduler should report, as opposed
    /// to the lifetime average a finite benchmark wants
    /// ([`CounterSnapshot::chars_per_sec`]). Returns 0.0 until two runs
    /// have completed inside the window.
    pub fn windowed_chars_per_sec(&self) -> f64 {
        self.rate.rate()
    }

    /// Runs every job to completion and reports results plus stats.
    /// Output `i` belongs to input job `i` regardless of which worker
    /// or batch carried it.
    ///
    /// With a [`ResiliencePolicy`] installed the run is fault-tolerant:
    /// worker results commit only after the worker passes its exit
    /// known-answer test, and anything voided is re-executed down the
    /// degradation ladder with full verification against the scalar
    /// spec — so outputs are spec-identical even under an armed
    /// [`FaultPlan`].
    ///
    /// # Errors
    ///
    /// On the fast path, an injected (or genuine) worker panic surfaces
    /// as [`Error::WorkerPanicked`] *after* every worker thread has
    /// been joined — an early failure never leaks running threads. The
    /// resilient path contains panics and returns `Ok`.
    pub fn run(&self, jobs: &[Job]) -> Result<ThroughputReport, Error> {
        let refs: Vec<JobRef<'_>> = jobs.iter().map(Job::to_ref).collect();
        self.run_refs(&refs)
    }

    /// As [`run`](Self::run), over borrowed jobs — the zero-copy entry
    /// point the ingestion layer and the [`Router`](crate::shard::Router)
    /// use, so text slices flow from a paged corpus straight into the
    /// kernels without an owning copy per job.
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run).
    pub fn run_refs(&self, jobs: &[JobRef<'_>]) -> Result<ThroughputReport, Error> {
        match self.resilience {
            Some(policy) => self.run_resilient(jobs, policy),
            None => self.run_fast(jobs),
        }
    }

    /// The zero-overhead path: no scrubbing, no buffering, no ladder.
    fn run_fast(&self, jobs: &[JobRef<'_>]) -> Result<ThroughputReport, Error> {
        let started = Instant::now();
        let width = self.width;
        let simd = simd_level();
        self.sink.record(TraceEvent::DispatchSelected {
            words: width.words() as u32,
            level: simd,
        });

        let counters = ThroughputCounters::new();
        let plan_timer = Instant::now();
        let plan = plan_batches(jobs, width.lanes());
        let plan_micros = plan_timer.elapsed().as_micros() as u64;
        let queue = WorkQueue::new(plan.len(), self.workers);
        let mut outputs: Vec<Option<JobOutput>> = vec![None; jobs.len()];

        let joined: Vec<std::thread::Result<Result<WorkerYield, Error>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.workers)
                    .map(|w| {
                        let (counters, plan, queue) = (&counters, &plan, &queue);
                        let (index, sink) = (&self.index, &self.sink);
                        let capacity = self.cache_capacity;
                        let chaos = self.chaos.as_ref();
                        scope.spawn(move || {
                            worker_run(
                                w, jobs, plan, queue, index, capacity, counters, sink, width, chaos,
                            )
                        })
                    })
                    .collect();
                // Join every handle before inspecting any outcome, so a
                // panicked worker cannot leave its siblings running when
                // we bail out below.
                handles.into_iter().map(|h| h.join()).collect()
            });

        let mut worker_stats = Vec::with_capacity(self.workers);
        let mut results = Vec::with_capacity(self.workers);
        for (w, joined) in joined.into_iter().enumerate() {
            match joined {
                Ok(res) => results.push(res),
                Err(_) => return Err(Error::WorkerPanicked { worker: w }),
            }
        }
        for res in results {
            let (outs, stats) = res?;
            for (idx, out) in outs {
                outputs[idx] = Some(out);
            }
            worker_stats.push(stats);
        }
        worker_stats.sort_by_key(|s| s.worker);

        let outputs = outputs
            .into_iter()
            .map(|o| o.expect("every job produces an output"))
            .collect();
        let totals = counters.snapshot(started.elapsed());
        self.lifetime_chars.add(totals.chars);
        self.rate.sample(self.lifetime_chars.get());
        Ok(ThroughputReport {
            outputs,
            workers: worker_stats,
            totals,
            simd,
            lanes_per_batch: width.lanes(),
            plan_micros,
            resilience: None,
        })
    }

    /// The fault-tolerant path: execute → detect → quarantine →
    /// recover, committing only verified results.
    fn run_resilient(
        &self,
        jobs: &[JobRef<'_>],
        policy: ResiliencePolicy,
    ) -> Result<ThroughputReport, Error> {
        let started = Instant::now();
        let rungs = ladder_rungs(self.width);
        let rung0 = self
            .ladder
            .rung
            .load(Ordering::Relaxed)
            .min(rungs.len() - 1);
        let width = rungs[rung0];
        let simd = simd_level();
        self.sink.record(TraceEvent::DispatchSelected {
            words: width.words() as u32,
            level: simd,
        });

        let counters = ThroughputCounters::new();
        let plan_timer = Instant::now();
        let plan = plan_batches(jobs, width.lanes());
        let plan_micros = plan_timer.elapsed().as_micros() as u64;
        let queue = WorkQueue::new(plan.len(), self.workers);
        let mut outputs: Vec<Option<JobOutput>> = vec![None; jobs.len()];
        let mut report = ResilienceReport::default();

        let joined: Vec<std::thread::Result<ResilientYield>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|w| {
                    let (counters, plan, queue) = (&counters, &plan, &queue);
                    let (index, sink) = (&self.index, &self.sink);
                    let capacity = self.cache_capacity;
                    let chaos = self.chaos.as_ref();
                    scope.spawn(move || {
                        resilient_worker(
                            w, jobs, plan, queue, index, capacity, counters, sink, width, policy,
                            chaos,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });

        let mut worker_stats = Vec::with_capacity(self.workers);
        for (w, joined) in joined.into_iter().enumerate() {
            let yielded = match joined {
                Ok(y) => y,
                // A panic that escaped containment (can only come from
                // the worker harness itself, not a batch): treat like a
                // quarantined worker with everything voided.
                Err(_) => ResilientYield::condemned(w, PlaneFault::WorkerPanic.label()),
            };
            report.faults_injected += yielded.faults_injected;
            report.scrub_mismatches += yielded.scrub_mismatches;
            if let Some(label) = yielded.condemned {
                self.sink.record(TraceEvent::WorkerQuarantined {
                    worker: w as u32,
                    label,
                });
                report.quarantined.push((w, label));
            } else {
                // Commit: fold the worker's buffered outputs and its
                // stats into the run's ground truth. (The enabled()
                // guard matters: `hits.count()` walks every output
                // bit, a price only a listening sink should charge.)
                if self.sink.enabled() {
                    for (idx, out) in &yielded.outs {
                        self.sink.record(TraceEvent::JobCompleted {
                            job: out.id,
                            worker: w as u32,
                            chars: jobs[*idx].text.len() as u64,
                            matches: out.hits.count() as u64,
                        });
                    }
                }
                counters.jobs.add(yielded.stats.jobs);
                counters.chars.add(yielded.stats.chars);
                counters.batches.add(yielded.stats.batches);
                counters.lane_slots_used.add(yielded.stats.lanes_used);
                counters.lane_slots_total.add(yielded.stats.lane_slots);
                for (idx, out) in yielded.outs {
                    outputs[idx] = Some(out);
                }
            }
            worker_stats.push(yielded.stats);
        }
        worker_stats.sort_by_key(|s| s.worker);

        // Everything not committed — batches of quarantined workers,
        // batches left unclaimed because every worker was condemned —
        // goes down the recovery ladder.
        let unresolved: Vec<usize> = (0..jobs.len()).filter(|&i| outputs[i].is_none()).collect();
        report.recovered_jobs = unresolved.len() as u64;
        let deepest = self.recover(
            jobs,
            &unresolved,
            &mut outputs,
            rungs,
            rung0,
            policy,
            &counters,
            &mut report,
        );

        // Ladder bookkeeping: a demoted run parks the engine on the
        // deepest rung recovery needed; a clean run counts toward
        // re-promotion.
        if deepest > rung0 {
            self.ladder
                .rung
                .store(deepest.min(rungs.len() - 1), Ordering::Relaxed);
            self.ladder.clean.store(0, Ordering::Relaxed);
        } else if unresolved.is_empty() && rung0 > 0 {
            let clean = self
                .ladder
                .clean
                .fetch_add(plan.len() as u64, Ordering::Relaxed)
                + plan.len() as u64;
            if clean >= policy.repromote_after {
                let up = rung0 - 1;
                self.ladder.rung.store(up, Ordering::Relaxed);
                self.ladder.clean.store(0, Ordering::Relaxed);
                self.sink.record(TraceEvent::LadderMoved {
                    words: rungs[up].words() as u32,
                    down: false,
                });
                report.promotions += 1;
            }
        }
        report.ladder_words = rungs[self
            .ladder
            .rung
            .load(Ordering::Relaxed)
            .min(rungs.len() - 1)]
        .words();

        let outputs = outputs
            .into_iter()
            .map(|o| o.expect("recovery resolves every job"))
            .collect();
        let totals = counters.snapshot(started.elapsed());
        self.lifetime_chars.add(totals.chars);
        self.rate.sample(self.lifetime_chars.get());
        Ok(ThroughputReport {
            outputs,
            workers: worker_stats,
            totals,
            simd,
            lanes_per_batch: width.lanes(),
            plan_micros,
            resilience: Some(report),
        })
    }

    /// Re-executes unresolved jobs down the ladder: group by pattern at
    /// the rung's width, retry with backoff, verify *every* lane
    /// against the scalar spec, descend on failure, land on the
    /// software fallback when hardware rungs are exhausted. Returns the
    /// deepest hardware rung index recovery used (`rung0` when nothing
    /// needed recovery; `rungs.len()` when the fallback was needed).
    #[allow(clippy::too_many_arguments)]
    fn recover(
        &self,
        jobs: &[JobRef<'_>],
        unresolved: &[usize],
        outputs: &mut [Option<JobOutput>],
        rungs: &'static [SuperWidth],
        rung0: usize,
        policy: ResiliencePolicy,
        counters: &ThroughputCounters,
        report: &mut ResilienceReport,
    ) -> usize {
        if unresolved.is_empty() {
            return rung0;
        }
        let mut deepest = rung0;
        let mut cache = PatternCache::new(self.cache_capacity.max(unresolved.len()));
        // Group unresolved jobs by pattern so recovery batches ride the
        // uniform path, then chunk at the *narrowest* rung width so one
        // chunk fits every rung it may descend through.
        let narrow = rungs[rungs.len() - 1].lanes();
        let mut order: Vec<&Pattern> = Vec::new();
        let mut groups: HashMap<&Pattern, Vec<usize>> = HashMap::new();
        for &i in unresolved {
            groups.entry(jobs[i].pattern).or_insert_with(|| {
                order.push(jobs[i].pattern);
                Vec::new()
            });
            groups
                .get_mut(jobs[i].pattern)
                .expect("just inserted")
                .push(i);
        }
        let mut chunk_no = 0usize;
        for pattern in order {
            let (compiled, _) = cache.get_or_compile(pattern);
            for chunk in groups[pattern].chunks(narrow) {
                let texts: Vec<&[Symbol]> = chunk.iter().map(|&i| jobs[i].text).collect();
                let truth: Vec<Vec<bool>> = chunk
                    .iter()
                    .map(|&i| match_spec(jobs[i].text, pattern))
                    .collect();
                let mut committed = false;
                for (ri, &rung) in rungs.iter().enumerate().skip(rung0) {
                    let attempts = policy.retry.max_retries.max(1);
                    for attempt in 1..=attempts {
                        if attempt > 1 {
                            let beats = policy.retry.backoff_beats(attempt - 1);
                            self.sink.record(TraceEvent::HostRetry {
                                attempt,
                                backoff_beats: beats,
                            });
                            let nap = policy
                                .beat
                                .saturating_mul(beats.min(u64::from(u32::MAX)) as u32);
                            std::thread::sleep(nap);
                        }
                        self.sink.record(TraceEvent::BatchRetried {
                            batch: chunk_no as u64,
                            attempt,
                            words: rung.words() as u32,
                        });
                        report.retried_batches += 1;
                        let Ok(hits) = uniform_hits(rung, &compiled, &texts) else {
                            continue;
                        };
                        let mut lanes: Vec<Vec<bool>> =
                            hits.iter().map(|h| h.bits().to_vec()).collect();
                        // An armed plan can fail the rung itself,
                        // modelling damage wider than one worker.
                        if let Some(plan) = self.chaos.as_ref() {
                            if plan.rung_fails(chunk_no, ri) {
                                corrupt_bits(
                                    PlaneFault::LaneUpset,
                                    plan.seed() ^ mix((chunk_no as u64) << 8 | ri as u64),
                                    &mut lanes,
                                    true,
                                );
                            }
                        }
                        if lanes == truth {
                            commit_recovered(
                                chunk, lanes, jobs, outputs, counters, &self.sink, rung,
                            );
                            committed = true;
                            deepest = deepest.max(ri);
                            break;
                        }
                    }
                    if committed {
                        break;
                    }
                    // This rung failed every attempt: step down.
                    let next_words = rungs.get(ri + 1).map_or(0, |r| r.words());
                    self.sink.record(TraceEvent::LadderMoved {
                        words: next_words as u32,
                        down: true,
                    });
                    report.demotions += 1;
                }
                if !committed {
                    // Software rung: exact by construction.
                    deepest = rungs.len();
                    self.sink.record(TraceEvent::FallbackEngaged);
                    report.fallback_jobs += chunk.len() as u64;
                    let matcher = software_fallback(pattern);
                    let lanes: Vec<Vec<bool>> = chunk
                        .iter()
                        .zip(&truth)
                        .map(|(&i, t)| {
                            matcher
                                .find(jobs[i].text, pattern)
                                .unwrap_or_else(|_| t.clone())
                        })
                        .collect();
                    commit_recovered(
                        chunk,
                        lanes,
                        jobs,
                        outputs,
                        counters,
                        &self.sink,
                        rungs[rungs.len() - 1],
                    );
                }
                chunk_no += 1;
            }
        }
        deepest
    }
}

/// What one worker hands back: outputs tagged with their global job
/// index, plus the worker's own statistics.
type WorkerYield = (Vec<(usize, JobOutput)>, WorkerStats);

/// Two-tier pattern lookup: private cache, then shared index (copying
/// the hit down into the cache), then compile-and-publish. Only the
/// last is a miss. The returned flag reports whether the lookup was a
/// hit — the chaos harness's [`PlaneFault::CachePoison`] keys on it.
fn lookup_pattern(
    pattern: &Pattern,
    local: &mut PatternCache,
    index: &PatternIndex,
    counters: &ThroughputCounters,
    sink: &SinkHandle,
) -> (Arc<CompiledPattern>, bool) {
    if let Some(compiled) = local.get(pattern) {
        counters.cache_hits.add(1);
        sink.record(TraceEvent::CacheLookup { hit: true });
        return (compiled, true);
    }
    if let Some(compiled) = index.get(pattern) {
        local.insert(pattern, Arc::clone(&compiled));
        counters.cache_hits.add(1);
        sink.record(TraceEvent::CacheLookup { hit: true });
        return (compiled, true);
    }
    let compiled = Arc::new(CompiledPattern::compile(pattern));
    index.publish(pattern, Arc::clone(&compiled));
    local.insert(pattern, Arc::clone(&compiled));
    counters.cache_misses.add(1);
    sink.record(TraceEvent::CacheLookup { hit: false });
    (compiled, false)
}

/// Runs one planned batch's kernel at `width`, returning the per-lane
/// results plus whether any pattern lookup hit the cache.
#[allow(clippy::too_many_arguments)]
fn execute_members(
    desc: &BatchDesc,
    jobs: &[JobRef<'_>],
    local: &mut PatternCache,
    index: &PatternIndex,
    counters: &ThroughputCounters,
    sink: &SinkHandle,
    width: SuperWidth,
) -> Result<(Vec<MatchBits>, bool), Error> {
    match desc {
        BatchDesc::Uniform { members } => {
            let (compiled, hit) =
                lookup_pattern(jobs[members[0]].pattern, local, index, counters, sink);
            let texts: Vec<&[Symbol]> = members.iter().map(|&i| jobs[i].text).collect();
            Ok((uniform_hits(width, &compiled, &texts)?, hit))
        }
        BatchDesc::Mixed { members } => {
            let mut any_hit = false;
            let compiled: Vec<Arc<CompiledPattern>> = members
                .iter()
                .map(|&i| {
                    let (c, hit) = lookup_pattern(jobs[i].pattern, local, index, counters, sink);
                    any_hit |= hit;
                    c
                })
                .collect();
            let lanes: Vec<(&CompiledPattern, &[Symbol])> = members
                .iter()
                .zip(&compiled)
                .map(|(&i, c)| (c.as_ref(), jobs[i].text))
                .collect();
            let hits = match width {
                SuperWidth::W1 => match_lanes(&lanes)?,
                SuperWidth::W4 => match_lanes_wide::<4>(&lanes)?,
                SuperWidth::W8 => match_lanes_wide::<8>(&lanes)?,
            };
            Ok((hits, any_hit))
        }
    }
}

/// The uniform kernel at a given width.
fn uniform_hits(
    width: SuperWidth,
    compiled: &CompiledPattern,
    texts: &[&[Symbol]],
) -> Result<Vec<MatchBits>, Error> {
    match width {
        SuperWidth::W1 => match_uniform(compiled, texts),
        SuperWidth::W4 => match_uniform_wide::<4>(compiled, texts),
        SuperWidth::W8 => match_uniform_wide::<8>(compiled, texts),
    }
}

/// Applies an active sticky fault to one executed batch: stalls sleep,
/// panics panic, data faults corrupt the result lanes in place.
/// Returns whether anything observable fired.
fn apply_sticky(
    fault: StickyFault,
    batch_no: u64,
    stall_millis: u64,
    members: &[usize],
    jobs: &[JobRef<'_>],
    hits: &mut [MatchBits],
    cache_hit: bool,
) -> bool {
    match fault.kind {
        PlaneFault::WorkerStall => {
            std::thread::sleep(Duration::from_millis(stall_millis));
            true
        }
        PlaneFault::WorkerPanic => panic!("injected fault: worker panic"),
        _ => {
            let mut lanes: Vec<Vec<bool>> = hits.iter().map(|h| h.bits().to_vec()).collect();
            let changed = corrupt_bits(
                fault.kind,
                fault.salt ^ mix(batch_no),
                &mut lanes,
                cache_hit,
            );
            if changed {
                for ((hit, bits), &i) in hits.iter_mut().zip(lanes).zip(members) {
                    *hit = MatchBits::new(bits, jobs[i].pattern.k());
                }
            }
            changed
        }
    }
}

/// One fast-path worker: pull batches from the stealing queue until
/// none remain. An armed chaos plan injects faults that nothing on
/// this path contains — corruption flows into the outputs and a panic
/// unwinds to the join in [`ThroughputEngine::run`].
#[allow(clippy::too_many_arguments)]
fn worker_run(
    worker: usize,
    jobs: &[JobRef<'_>],
    plan: &[BatchDesc],
    queue: &WorkQueue,
    index: &PatternIndex,
    cache_capacity: usize,
    counters: &ThroughputCounters,
    sink: &SinkHandle,
    width: SuperWidth,
    chaos: Option<&FaultPlan>,
) -> Result<WorkerYield, Error> {
    let started = Instant::now();
    let mut local = PatternCache::new(cache_capacity);
    let mut stats = WorkerStats::idle(worker);
    let mut outs: Vec<(usize, JobOutput)> = Vec::new();
    let sticky = chaos.and_then(|p| p.worker_fault(worker));
    let stall_millis = chaos.map_or(0, |p| p.stall_millis());
    let mut batch_no = 0u64;

    while let Some((b, stolen_from)) = queue.next(worker) {
        if let Some(victim) = stolen_from {
            counters.steals.add(1);
            sink.record(TraceEvent::BatchStolen {
                worker: worker as u32,
                victim: victim as u32,
            });
        }
        let members = match &plan[b] {
            BatchDesc::Uniform { members } | BatchDesc::Mixed { members } => members,
        };
        if sink.enabled() {
            for &i in members {
                sink.record(TraceEvent::JobStarted {
                    job: jobs[i].id,
                    worker: worker as u32,
                });
            }
        }
        let timer = sink.enabled().then(Instant::now);
        let (mut hits, cache_hit) =
            execute_members(&plan[b], jobs, &mut local, index, counters, sink, width)?;
        if let Some(f) = sticky.filter(|f| batch_no >= f.onset) {
            sink.record(TraceEvent::FaultInjected {
                worker: worker as u32,
                label: f.kind.label(),
            });
            apply_sticky(
                f,
                batch_no,
                stall_millis,
                members,
                jobs,
                &mut hits,
                cache_hit,
            );
        }
        batch_no += 1;
        record_batch(
            members,
            hits,
            jobs,
            &mut outs,
            &mut stats,
            counters,
            sink,
            elapsed_micros(timer),
            width,
        );
    }

    stats.elapsed = started.elapsed();
    Ok((outs, stats))
}

/// Microseconds since an optional batch timer was armed (0 when the
/// sink was disabled and no timer ran).
fn elapsed_micros(timer: Option<Instant>) -> u64 {
    timer.map_or(0, |t| t.elapsed().as_micros() as u64)
}

/// Books one completed batch into outputs, stats, counters and the
/// trace sink.
#[allow(clippy::too_many_arguments)]
fn record_batch(
    members: &[usize],
    hits: Vec<MatchBits>,
    jobs: &[JobRef<'_>],
    outs: &mut Vec<(usize, JobOutput)>,
    stats: &mut WorkerStats,
    counters: &ThroughputCounters,
    sink: &SinkHandle,
    micros: u64,
    width: SuperWidth,
) {
    debug_assert_eq!(members.len(), hits.len());
    let traced = sink.enabled();
    let slots = width.lanes() as u64;
    let mut batch_chars = 0u64;
    let mut steps = 0u64;
    for (&i, hit) in members.iter().zip(hits) {
        let job = &jobs[i];
        batch_chars += job.text.len() as u64;
        steps = steps.max(job.text.len() as u64);
        if traced {
            sink.record(TraceEvent::JobCompleted {
                job: job.id,
                worker: stats.worker as u32,
                chars: job.text.len() as u64,
                matches: hit.count() as u64,
            });
        }
        outs.push((
            i,
            JobOutput {
                id: job.id,
                hits: hit,
            },
        ));
    }
    if traced {
        sink.record(TraceEvent::BatchExecuted {
            worker: stats.worker as u32,
            lanes: members.len() as u32,
            slots: slots as u32,
            steps,
            micros,
        });
    }
    stats.jobs += members.len() as u64;
    stats.chars += batch_chars;
    stats.batches += 1;
    stats.lanes_used += members.len() as u64;
    stats.lane_slots += slots;
    counters.jobs.add(members.len() as u64);
    counters.chars.add(batch_chars);
    counters.batches.add(1);
    counters.lane_slots_used.add(members.len() as u64);
    counters.lane_slots_total.add(slots);
}

/// What one resilient worker hands back. Unlike the fast path's
/// [`WorkerYield`], outputs here are *pending* — the coordinator
/// commits them only for workers that returned un-condemned.
struct ResilientYield {
    stats: WorkerStats,
    outs: Vec<(usize, JobOutput)>,
    condemned: Option<&'static str>,
    faults_injected: u64,
    scrub_mismatches: u64,
}

impl ResilientYield {
    /// A fully voided yield: no outputs, zeroed stats.
    fn condemned(worker: usize, label: &'static str) -> Self {
        ResilientYield {
            stats: WorkerStats::idle(worker),
            outs: Vec::new(),
            condemned: Some(label),
            faults_injected: 0,
            scrub_mismatches: 0,
        }
    }
}

/// Books one executed batch into the worker's *pending* state: local
/// stats and buffered outputs plus the `BatchExecuted` trace (the
/// execution really happened) — but no shared counters and no
/// `JobCompleted`, which belong to the commit.
#[allow(clippy::too_many_arguments)]
fn book_pending(
    members: &[usize],
    hits: Vec<MatchBits>,
    jobs: &[JobRef<'_>],
    outs: &mut Vec<(usize, JobOutput)>,
    stats: &mut WorkerStats,
    sink: &SinkHandle,
    micros: u64,
    width: SuperWidth,
) {
    debug_assert_eq!(members.len(), hits.len());
    let slots = width.lanes() as u64;
    let mut batch_chars = 0u64;
    let mut steps = 0u64;
    for (&i, hit) in members.iter().zip(hits) {
        let job = &jobs[i];
        batch_chars += job.text.len() as u64;
        steps = steps.max(job.text.len() as u64);
        outs.push((
            i,
            JobOutput {
                id: job.id,
                hits: hit,
            },
        ));
    }
    sink.record(TraceEvent::BatchExecuted {
        worker: stats.worker as u32,
        lanes: members.len() as u32,
        slots: slots as u32,
        steps,
        micros,
    });
    stats.jobs += members.len() as u64;
    stats.chars += batch_chars;
    stats.batches += 1;
    stats.lanes_used += members.len() as u64;
    stats.lane_slots += slots;
}

/// Commits one recovery chunk: spec-verified (or software-exact) lanes
/// become outputs, booked into the shared counters under the
/// coordinator's pseudo-worker id `u32::MAX`.
fn commit_recovered(
    chunk: &[usize],
    lanes: Vec<Vec<bool>>,
    jobs: &[JobRef<'_>],
    outputs: &mut [Option<JobOutput>],
    counters: &ThroughputCounters,
    sink: &SinkHandle,
    width: SuperWidth,
) {
    let mut chars = 0u64;
    for (&i, bits) in chunk.iter().zip(lanes) {
        let job = &jobs[i];
        chars += job.text.len() as u64;
        let hits = MatchBits::new(bits, job.pattern.k());
        if sink.enabled() {
            sink.record(TraceEvent::JobCompleted {
                job: job.id,
                worker: u32::MAX,
                chars: job.text.len() as u64,
                matches: hits.count() as u64,
            });
        }
        outputs[i] = Some(JobOutput { id: job.id, hits });
    }
    counters.jobs.add(chunk.len() as u64);
    counters.chars.add(chars);
    counters.batches.add(1);
    counters.lane_slots_used.add(chunk.len() as u64);
    counters.lane_slots_total.add(width.lanes() as u64);
}

/// One resilient worker: like [`worker_run`] but every batch executes
/// under `catch_unwind` and a wall-clock watchdog, a sampled lane is
/// periodically re-run through the scalar spec, results are buffered
/// rather than committed, and the worker must pass the exit
/// known-answer test before the coordinator will commit its buffer.
/// Any detected fault condemns the worker: its buffer is voided and
/// the coordinator recovers its jobs down the ladder.
#[allow(clippy::too_many_arguments)]
fn resilient_worker(
    worker: usize,
    jobs: &[JobRef<'_>],
    plan: &[BatchDesc],
    queue: &WorkQueue,
    index: &PatternIndex,
    cache_capacity: usize,
    counters: &ThroughputCounters,
    sink: &SinkHandle,
    width: SuperWidth,
    policy: ResiliencePolicy,
    chaos: Option<&FaultPlan>,
) -> ResilientYield {
    let started = Instant::now();
    let mut local = PatternCache::new(cache_capacity);
    let mut stats = WorkerStats::idle(worker);
    let mut pending: Vec<(usize, JobOutput)> = Vec::new();
    let sticky = chaos.and_then(|p| p.worker_fault(worker));
    let stall_millis = chaos.map_or(0, |p| p.stall_millis());
    let mut scrub_rng = XorShift64::new(mix(worker as u64 + 1) ^ 0x5C4B_0000);
    let mut batch_no = 0u64;
    let mut faults_injected = 0u64;
    let mut scrub_mismatches = 0u64;
    let mut condemned: Option<&'static str> = None;

    while let Some((b, stolen_from)) = queue.next(worker) {
        if let Some(victim) = stolen_from {
            counters.steals.add(1);
            sink.record(TraceEvent::BatchStolen {
                worker: worker as u32,
                victim: victim as u32,
            });
        }
        let members = match &plan[b] {
            BatchDesc::Uniform { members } | BatchDesc::Mixed { members } => members,
        };
        if sink.enabled() {
            for &i in members {
                sink.record(TraceEvent::JobStarted {
                    job: jobs[i].id,
                    worker: worker as u32,
                });
            }
        }
        let timer = Instant::now();
        let active = sticky.filter(|f| batch_no >= f.onset);
        let executed = catch_unwind(AssertUnwindSafe(|| -> Result<Vec<MatchBits>, Error> {
            let (mut hits, cache_hit) =
                execute_members(&plan[b], jobs, &mut local, index, counters, sink, width)?;
            if let Some(f) = active {
                sink.record(TraceEvent::FaultInjected {
                    worker: worker as u32,
                    label: f.kind.label(),
                });
                faults_injected += 1;
                apply_sticky(
                    f,
                    batch_no,
                    stall_millis,
                    members,
                    jobs,
                    &mut hits,
                    cache_hit,
                );
            }
            Ok(hits)
        }));
        batch_no += 1;
        let hits = match executed {
            Err(_) => {
                condemned = Some(PlaneFault::WorkerPanic.label());
                break;
            }
            Ok(Err(_)) => {
                condemned = Some("engine_error");
                break;
            }
            Ok(Ok(hits)) => hits,
        };
        if timer.elapsed() > policy.watchdog {
            condemned = Some(PlaneFault::WorkerStall.label());
            break;
        }
        if policy.scrub_period_batches > 0 && batch_no.is_multiple_of(policy.scrub_period_batches) {
            let pos = scrub_rng.bounded(members.len() as u64 - 1) as usize;
            let i = members[pos];
            if hits[pos].bits() != match_spec(jobs[i].text, jobs[i].pattern).as_slice() {
                sink.record(TraceEvent::ScrubMismatch {
                    worker: worker as u32,
                    batch: b as u64,
                });
                scrub_mismatches += 1;
                condemned = Some("scrub_mismatch");
                break;
            }
        }
        book_pending(
            members,
            hits,
            jobs,
            &mut pending,
            &mut stats,
            sink,
            elapsed_micros(Some(timer)),
            width,
        );
    }

    // Exit known-answer test: the commit gate. Faults are sticky, so a
    // datapath fault that was active during any pending batch is still
    // active here and must reveal itself on the known answers.
    if condemned.is_none()
        && batch_no > 0
        && !known_answer_test(worker, width, &mut local, sticky, batch_no)
    {
        condemned = Some("kat_mismatch");
    }
    if condemned.is_some() {
        pending.clear();
        stats = WorkerStats::idle(worker);
    }
    stats.elapsed = started.elapsed();
    ResilientYield {
        stats,
        outs: pending,
        condemned,
        faults_injected,
        scrub_mismatches,
    }
}

/// Runs a deterministic known-answer workload through the worker's own
/// datapath — its local pattern cache, the run-width kernel and any
/// sticky data fault — and checks every lane against the scalar spec.
/// The pattern is executed twice so the second round is a guaranteed
/// cache hit, which is what flushes out [`PlaneFault::CachePoison`].
/// Liveness faults (stall, panic) are not replayed: they cannot
/// corrupt data and are caught by the watchdog and `catch_unwind`
/// during real batches.
fn known_answer_test(
    worker: usize,
    width: SuperWidth,
    local: &mut PatternCache,
    sticky: Option<StickyFault>,
    batches_started: u64,
) -> bool {
    let Ok(pattern) = Pattern::parse("ABAB") else {
        return false;
    };
    let mut rng = XorShift64::new(mix(worker as u64 + 1) ^ 0x04A7_0000);
    let texts: Vec<Vec<Symbol>> = (0..width.lanes())
        .map(|_| {
            let len = 40usize;
            let mut s: String = (0..len)
                .map(|_| if rng.next_u64() & 1 == 1 { 'A' } else { 'B' })
                .collect();
            // Plant one guaranteed match so a stuck-at-false lane is
            // always distinguishable from an honest all-miss lane.
            let at = rng.bounded(len as u64 - 4) as usize;
            s.replace_range(at..at + 4, "ABAB");
            text_from_letters(&s).expect("A/B are alphabet letters")
        })
        .collect();
    let refs: Vec<&[Symbol]> = texts.iter().map(|t| t.as_slice()).collect();
    for round in 0..2u64 {
        let (compiled, cache_hit) = local.get_or_compile(&pattern);
        let Ok(mut hits) = uniform_hits(width, &compiled, &refs) else {
            return false;
        };
        if let Some(f) =
            sticky.filter(|f| f.kind.corrupts_data() && f.onset <= batches_started + round)
        {
            let mut lanes: Vec<Vec<bool>> = hits.iter().map(|h| h.bits().to_vec()).collect();
            if corrupt_bits(
                f.kind,
                f.salt ^ mix(batches_started + round),
                &mut lanes,
                cache_hit,
            ) {
                for (hit, bits) in hits.iter_mut().zip(lanes) {
                    *hit = MatchBits::new(bits, pattern.k());
                }
            }
        }
        for (hit, text) in hits.iter().zip(&texts) {
            if hit.bits() != match_spec(text, &pattern).as_slice() {
                return false;
            }
        }
    }
    true
}

/// A bounded budget of batch-slot bytes, shared between the scheduler
/// and any front end that feeds it (the `pm-serve` front door).
///
/// The superplane engine's capacity is finite: `workers × W × 64`
/// lanes, each carrying a stream of text. A front door multiplexing
/// thousands of client sessions must not buffer unbounded text on
/// behalf of slow clients, so admission happens in *bytes*: every feed
/// leases its chunk length from the pool and the lease releases on
/// drop (RAII). When the pool is exhausted the caller signals
/// backpressure (SERVER_BUSY paced by
/// [`RetryPolicy`]) instead of queueing.
///
/// Acquisition is a CAS loop on one atomic — no lock, no fairness
/// queue; contention cost is a handful of retries under the same
/// relaxed discipline as [`crate::counters`].
///
/// ```
/// use pm_chip::throughput::SlotPool;
///
/// let pool = SlotPool::new(1024);
/// let lease = pool.try_lease(1000).expect("fits");
/// assert_eq!(pool.available(), 24);
/// assert!(pool.try_lease(100).is_none(), "exhausted: backpressure");
/// drop(lease);
/// assert_eq!(pool.available(), 1024);
/// ```
#[derive(Debug, Clone)]
pub struct SlotPool {
    inner: Arc<SlotPoolInner>,
}

#[derive(Debug)]
struct SlotPoolInner {
    capacity: u64,
    in_flight: AtomicU64,
}

impl SlotPool {
    /// A pool of `capacity_bytes` leasable batch-slot bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        SlotPool {
            inner: Arc::new(SlotPoolInner {
                capacity: capacity_bytes,
                in_flight: AtomicU64::new(0),
            }),
        }
    }

    /// Leases `bytes` from the pool, or `None` when the remaining
    /// budget is too small — the caller's cue to apply backpressure.
    /// A zero-byte lease always succeeds and holds nothing.
    pub fn try_lease(&self, bytes: u64) -> Option<SlotLease> {
        let mut current = self.inner.in_flight.load(Ordering::Relaxed);
        loop {
            let next = current.checked_add(bytes)?;
            if next > self.inner.capacity {
                return None;
            }
            match self.inner.in_flight.compare_exchange_weak(
                current,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(SlotLease {
                        pool: Arc::clone(&self.inner),
                        bytes,
                    })
                }
                Err(seen) => current = seen,
            }
        }
    }

    /// Total leasable bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.capacity
    }

    /// Bytes currently leased out.
    pub fn in_flight(&self) -> u64 {
        self.inner.in_flight.load(Ordering::Relaxed)
    }

    /// Bytes still available to lease.
    pub fn available(&self) -> u64 {
        self.inner.capacity.saturating_sub(self.in_flight())
    }
}

/// A live lease of batch-slot bytes from a [`SlotPool`]; the bytes
/// return to the pool when the lease drops.
#[derive(Debug)]
pub struct SlotLease {
    pool: Arc<SlotPoolInner>,
    bytes: u64,
}

impl SlotLease {
    /// Bytes this lease holds.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for SlotLease {
    fn drop(&mut self) {
        self.pool.in_flight.fetch_sub(self.bytes, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::text_from_letters;

    fn jobs_fixture() -> Vec<Job> {
        let p1 = Pattern::parse("AXC").unwrap();
        let p2 = Pattern::parse("BB").unwrap();
        let p3 = Pattern::parse("CABX").unwrap();
        let texts = ["ABCAACCAB", "BBABBB", "CABACABC", "", "AACCA"];
        let mut jobs = Vec::new();
        for (i, t) in texts.iter().enumerate() {
            for (j, p) in [&p1, &p2, &p3].iter().enumerate() {
                jobs.push(Job::new(
                    (i * 3 + j) as u64,
                    (*p).clone(),
                    text_from_letters(t).unwrap(),
                ));
            }
        }
        jobs
    }

    #[test]
    fn outputs_equal_spec_for_any_worker_count_and_width() {
        let jobs = jobs_fixture();
        for width in [SuperWidth::W1, SuperWidth::W4, SuperWidth::W8] {
            for workers in [1, 2, 3, 7] {
                let mut engine = ThroughputEngine::new(workers, 8);
                engine.set_width(width);
                let report = engine.run(&jobs).unwrap();
                assert_eq!(report.outputs.len(), jobs.len());
                assert_eq!(report.lanes_per_batch, width.lanes());
                for (out, job) in report.outputs.iter().zip(&jobs) {
                    assert_eq!(out.id, job.id);
                    assert_eq!(
                        out.hits.bits(),
                        match_spec(&job.text, &job.pattern),
                        "job {} under {workers} workers at width {width}",
                        job.id
                    );
                }
            }
        }
    }

    #[test]
    fn repeated_patterns_hit_the_cache() {
        let jobs = jobs_fixture();
        let engine = ThroughputEngine::new(1, 8);
        let report = engine.run(&jobs).unwrap();
        // 3 distinct patterns; one worker sees each exactly once.
        assert_eq!(report.totals.cache_misses, 3);
        assert_eq!(engine.cached_patterns(), 3);
        // A second run finds everything in the shared index: all hits.
        let report2 = engine.run(&jobs).unwrap();
        assert_eq!(report2.totals.cache_misses, 0);
        assert!(report2.totals.cache_hit_rate() == 1.0);
    }

    #[test]
    fn lru_evicts_the_coldest_pattern() {
        let mut cache = PatternCache::new(2);
        let a = Pattern::parse("A").unwrap();
        let b = Pattern::parse("B").unwrap();
        let c = Pattern::parse("C").unwrap();
        cache.get_or_compile(&a);
        cache.get_or_compile(&b);
        cache.get_or_compile(&a); // refresh a; b is now coldest
        cache.get_or_compile(&c); // evicts b
        assert_eq!(cache.len(), 2);
        let (_, hit_a) = cache.get_or_compile(&a);
        assert!(hit_a, "a was refreshed and must survive");
        let (_, hit_b) = cache.get_or_compile(&b);
        assert!(!hit_b, "b was the LRU entry and must be gone");
    }

    #[test]
    fn index_evicts_fifo_and_tolerates_republication() {
        let index = PatternIndex::new(2);
        let a = Pattern::parse("A").unwrap();
        let b = Pattern::parse("B").unwrap();
        let c = Pattern::parse("C").unwrap();
        index.publish(&a, Arc::new(CompiledPattern::compile(&a)));
        index.publish(&b, Arc::new(CompiledPattern::compile(&b)));
        index.publish(&a, Arc::new(CompiledPattern::compile(&a))); // no-op
        assert_eq!(index.len(), 2);
        index.publish(&c, Arc::new(CompiledPattern::compile(&c))); // evicts a
        assert_eq!(index.len(), 2);
        assert!(index.get(&a).is_none(), "a was the oldest publication");
        assert!(index.get(&b).is_some());
        assert!(index.get(&c).is_some());
    }

    #[test]
    fn global_planning_merges_same_pattern_jobs_across_the_run() {
        // 8 jobs, one pattern, interleaved with nothing: global
        // planning packs them into a single uniform batch even though
        // the old static sharding would have split them over workers.
        let p = Pattern::parse("AB").unwrap();
        let jobs: Vec<Job> = (0..8)
            .map(|id| Job::new(id, p.clone(), text_from_letters("ABAB").unwrap()))
            .collect();
        let refs: Vec<JobRef<'_>> = jobs.iter().map(Job::to_ref).collect();
        let plan = plan_batches(&refs, SuperWidth::W8.lanes());
        assert_eq!(plan.len(), 1);
        match &plan[0] {
            BatchDesc::Uniform { members } => assert_eq!(members.len(), 8),
            other => panic!("expected a uniform batch, got {other:?}"),
        }
        // And the batch count survives into the run's counters.
        let engine = ThroughputEngine::new(4, 8);
        let report = engine.run(&jobs).unwrap();
        assert_eq!(report.totals.batches, 1);
    }

    #[test]
    fn planner_splits_groups_at_the_lane_limit() {
        let p = Pattern::parse("AB").unwrap();
        let q = Pattern::parse("BA").unwrap();
        let lanes = SuperWidth::W1.lanes();
        let mut jobs: Vec<Job> = (0..(lanes as u64 + 3))
            .map(|id| Job::new(id, p.clone(), text_from_letters("AB").unwrap()))
            .collect();
        jobs.push(Job::new(999, q.clone(), text_from_letters("BA").unwrap()));
        let refs: Vec<JobRef<'_>> = jobs.iter().map(Job::to_ref).collect();
        let plan = plan_batches(&refs, lanes);
        // 65+2 same-pattern jobs → two uniform batches; the singleton
        // rides a mixed batch of its own.
        assert_eq!(plan.len(), 3);
        match (&plan[0], &plan[1], &plan[2]) {
            (
                BatchDesc::Uniform { members: m0 },
                BatchDesc::Uniform { members: m1 },
                BatchDesc::Mixed { members: m2 },
            ) => {
                assert_eq!(m0.len(), lanes);
                assert_eq!(m1.len(), 3);
                assert_eq!(m2, &vec![jobs.len() - 1]);
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn stats_account_for_every_character() {
        let jobs = jobs_fixture();
        let total_chars: u64 = jobs.iter().map(|j| j.text.len() as u64).sum();
        let engine = ThroughputEngine::new(3, 8);
        let report = engine.run(&jobs).unwrap();
        assert_eq!(report.totals.chars, total_chars);
        let worker_chars: u64 = report.workers.iter().map(|w| w.chars).sum();
        assert_eq!(worker_chars, total_chars);
        assert_eq!(report.totals.jobs, jobs.len() as u64);
        assert!(report.totals.lane_occupancy() > 0.0);
        assert!(report.totals.lane_occupancy() <= 1.0);
        // Per-batch slot accounting matches the configured width.
        assert_eq!(
            report.totals.lane_slots_total,
            report.totals.batches * engine.lanes_per_batch() as u64
        );
        let worker_slots: u64 = report.workers.iter().map(|w| w.lane_slots).sum();
        assert_eq!(worker_slots, report.totals.lane_slots_total);
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let jobs = jobs_fixture().into_iter().take(2).collect::<Vec<_>>();
        let engine = ThroughputEngine::new(8, 4);
        let report = engine.run(&jobs).unwrap();
        assert_eq!(report.outputs.len(), 2);
        assert_eq!(report.workers.len(), 8);
    }

    #[test]
    fn sinked_engine_reports_ground_truth_counts() {
        use crate::telemetry::MetricsRegistry;
        let jobs = jobs_fixture();
        let metrics = Arc::new(MetricsRegistry::new());
        let engine = ThroughputEngine::with_sink(2, 8, SinkHandle::new(metrics.clone()));
        let report = engine.run(&jobs).unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.jobs_started, jobs.len() as u64);
        assert_eq!(snap.jobs_completed, jobs.len() as u64);
        assert_eq!(snap.chars, report.totals.chars);
        let truth_matches: u64 = report.outputs.iter().map(|o| o.hits.count() as u64).sum();
        assert_eq!(snap.matches, truth_matches);
        assert_eq!(snap.batches, report.totals.batches);
        assert_eq!(snap.lane_slots_used, report.totals.lane_slots_used);
        assert_eq!(snap.lane_slots_total, report.totals.lane_slots_total);
        assert_eq!(snap.batch_occupancy.count, report.totals.batches);
        assert_eq!(snap.batch_occupancy.sum, report.totals.lane_slots_used);
        // The dispatch announcement is folded into the registry.
        assert_eq!(snap.superplane_words, engine.width().words() as u64);
        assert_eq!(
            snap.dispatch_portable + snap.dispatch_avx2 + snap.dispatch_avx512,
            1
        );
        // The engine samples its rate window after each run.
        assert_eq!(engine.lifetime_chars(), report.totals.chars);
        assert!(engine.windowed_chars_per_sec() >= 0.0);
    }

    #[test]
    fn empty_job_list_yields_empty_report() {
        let engine = ThroughputEngine::new(2, 4);
        let report = engine.run(&[]).unwrap();
        assert!(report.outputs.is_empty());
        assert_eq!(report.totals.chars, 0);
        assert_eq!(report.workers.len(), 2);
    }

    use crate::faults::FaultPlan;

    fn assert_spec_equal(report: &ThroughputReport, jobs: &[Job]) {
        for (out, job) in report.outputs.iter().zip(jobs) {
            assert_eq!(out.id, job.id);
            assert_eq!(
                out.hits.bits(),
                match_spec(&job.text, &job.pattern),
                "job {}",
                job.id
            );
        }
    }

    #[test]
    fn panicking_worker_yields_error_not_abort() {
        // Satellite (f) regression: before the join fix, a worker panic
        // unwound through `join().expect(...)` and aborted the caller.
        // Now every thread is joined first and the panic surfaces as a
        // typed error.
        let jobs = jobs_fixture();
        let mut engine = ThroughputEngine::new(3, 8);
        engine.set_fault_plan(Some(
            FaultPlan::new(7)
                .with_worker_fault_permille(1000)
                .with_forced_kind(PlaneFault::WorkerPanic)
                .with_max_onset_batches(0),
        ));
        match engine.run(&jobs) {
            Err(Error::WorkerPanicked { .. }) => {}
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // The engine survives the failed run and works once disarmed.
        engine.set_fault_plan(None);
        let report = engine.run(&jobs).unwrap();
        assert_spec_equal(&report, &jobs);
    }

    #[test]
    fn unprotected_chaos_corrupts_fast_path_outputs() {
        // A data fault with nothing containing it flows straight into
        // the outputs — the contrast that makes the resilient path's
        // guarantee meaningful.
        let jobs = jobs_fixture();
        let mut engine = ThroughputEngine::new(1, 8);
        engine.set_fault_plan(Some(
            FaultPlan::new(3)
                .with_worker_fault_permille(1000)
                .with_forced_kind(PlaneFault::StuckComparator { level: true })
                .with_max_onset_batches(0),
        ));
        let report = engine.run(&jobs).unwrap();
        let corrupted = report
            .outputs
            .iter()
            .zip(&jobs)
            .any(|(out, job)| out.hits.bits() != match_spec(&job.text, &job.pattern));
        assert!(corrupted, "forced stuck comparator must corrupt something");
    }

    #[test]
    fn resilient_run_is_spec_identical_under_every_fault_kind() {
        let jobs = jobs_fixture();
        let kinds = [
            PlaneFault::LaneUpset,
            PlaneFault::StuckComparator { level: true },
            PlaneFault::StuckComparator { level: false },
            PlaneFault::CachePoison,
            PlaneFault::WorkerPanic,
        ];
        for kind in kinds {
            let mut engine = ThroughputEngine::new(2, 8);
            engine.set_resilience(Some(ResiliencePolicy::default()));
            engine.set_fault_plan(Some(
                FaultPlan::new(11)
                    .with_worker_fault_permille(1000)
                    .with_forced_kind(kind)
                    .with_max_onset_batches(1)
                    .with_rung_fail_permille(0),
            ));
            let report = engine.run(&jobs).unwrap();
            assert_spec_equal(&report, &jobs);
            let res = report.resilience.expect("resilient run reports");
            assert!(
                !res.quarantined.is_empty(),
                "{kind:?}: every worker is defective, someone must be condemned"
            );
            assert!(res.recovered_jobs > 0, "{kind:?}");
        }
    }

    #[test]
    fn resilient_run_without_faults_commits_everything_directly() {
        let jobs = jobs_fixture();
        let mut engine = ThroughputEngine::new(2, 8);
        engine.set_resilience(Some(ResiliencePolicy::default()));
        let report = engine.run(&jobs).unwrap();
        assert_spec_equal(&report, &jobs);
        let res = report.resilience.expect("resilient run reports");
        assert_eq!(res.quarantined, vec![]);
        assert_eq!(res.recovered_jobs, 0);
        assert_eq!(res.faults_injected, 0);
        assert_eq!(res.fallback_jobs, 0);
        // Counters still account for every character.
        let total_chars: u64 = jobs.iter().map(|j| j.text.len() as u64).sum();
        assert_eq!(report.totals.chars, total_chars);
        assert_eq!(report.totals.jobs, jobs.len() as u64);
    }

    #[test]
    fn failing_rungs_force_the_software_fallback_and_demote_the_ladder() {
        // Every worker defective AND every hardware recovery rung
        // failing: the only exit is the software rung, end to end.
        let jobs = jobs_fixture();
        let mut engine = ThroughputEngine::new(2, 8);
        engine.set_resilience(Some(ResiliencePolicy::default()));
        engine.set_fault_plan(Some(
            FaultPlan::new(5)
                .with_worker_fault_permille(1000)
                .with_forced_kind(PlaneFault::StuckComparator { level: true })
                .with_max_onset_batches(0)
                .with_rung_fail_permille(1000),
        ));
        assert_eq!(engine.ladder_width(), SuperWidth::W8);
        let report = engine.run(&jobs).unwrap();
        assert_spec_equal(&report, &jobs);
        let res = report.resilience.expect("resilient run reports");
        assert!(res.fallback_jobs > 0, "all rungs fail → software");
        assert!(res.demotions > 0);
        assert!(res.retried_batches > 0);
        // The engine parks on the narrowest hardware rung for next run.
        assert_eq!(res.ladder_words, SuperWidth::W1.words());
        assert_eq!(engine.ladder_width(), SuperWidth::W1);
    }

    #[test]
    fn clean_runs_repromote_the_ladder() {
        let jobs = jobs_fixture();
        let mut engine = ThroughputEngine::new(2, 8);
        let policy = ResiliencePolicy {
            repromote_after: 1,
            ..ResiliencePolicy::default()
        };
        engine.set_resilience(Some(policy));
        // Demote first.
        engine.set_fault_plan(Some(
            FaultPlan::new(5)
                .with_worker_fault_permille(1000)
                .with_forced_kind(PlaneFault::StuckComparator { level: true })
                .with_max_onset_batches(0)
                .with_rung_fail_permille(1000),
        ));
        engine.run(&jobs).unwrap();
        assert_eq!(engine.ladder_width(), SuperWidth::W1);
        // Then run clean: with repromote_after = 1 each clean run
        // climbs one rung until back at the configured width.
        engine.set_fault_plan(None);
        let r1 = engine.run(&jobs).unwrap();
        assert_eq!(r1.resilience.as_ref().unwrap().promotions, 1);
        assert_eq!(engine.ladder_width(), SuperWidth::W4);
        let r2 = engine.run(&jobs).unwrap();
        assert_spec_equal(&r2, &jobs);
        assert_eq!(engine.ladder_width(), SuperWidth::W8);
    }

    #[test]
    fn stalled_worker_trips_the_watchdog() {
        let jobs = jobs_fixture();
        let mut engine = ThroughputEngine::new(2, 8);
        engine.set_resilience(Some(ResiliencePolicy {
            watchdog: Duration::from_millis(10),
            ..ResiliencePolicy::default()
        }));
        engine.set_fault_plan(Some(
            FaultPlan::new(2)
                .with_worker_fault_permille(1000)
                .with_forced_kind(PlaneFault::WorkerStall)
                .with_stall_millis(40)
                .with_max_onset_batches(0),
        ));
        let report = engine.run(&jobs).unwrap();
        assert_spec_equal(&report, &jobs);
        let res = report.resilience.expect("resilient run reports");
        assert!(res
            .quarantined
            .iter()
            .any(|(_, label)| *label == "worker_stall"));
    }

    #[test]
    fn resilient_telemetry_reaches_the_registry() {
        use crate::telemetry::MetricsRegistry;
        let jobs = jobs_fixture();
        let metrics = Arc::new(MetricsRegistry::new());
        let mut engine = ThroughputEngine::with_sink(2, 8, SinkHandle::new(metrics.clone()));
        engine.set_resilience(Some(ResiliencePolicy::default()));
        engine.set_fault_plan(Some(
            FaultPlan::new(11)
                .with_worker_fault_permille(1000)
                .with_forced_kind(PlaneFault::StuckComparator { level: true })
                .with_max_onset_batches(0)
                .with_rung_fail_permille(0),
        ));
        let report = engine.run(&jobs).unwrap();
        assert_spec_equal(&report, &jobs);
        let res = report.resilience.expect("resilient run reports");
        let snap = metrics.snapshot();
        assert_eq!(snap.faults_injected, res.faults_injected);
        assert_eq!(snap.quarantined_workers, res.quarantined.len() as u64);
        assert_eq!(snap.batches_retried, res.retried_batches);
        assert_eq!(snap.scrub_mismatches, res.scrub_mismatches);
        // Committed ground truth flows through JobCompleted as before.
        assert_eq!(snap.jobs_completed, jobs.len() as u64);
        let truth_matches: u64 = report.outputs.iter().map(|o| o.hits.count() as u64).sum();
        assert_eq!(snap.matches, truth_matches);
    }

    #[test]
    fn known_answer_test_passes_clean_and_fails_corrupt() {
        for width in [SuperWidth::W1, SuperWidth::W4, SuperWidth::W8] {
            let mut cache = PatternCache::new(4);
            assert!(
                known_answer_test(0, width, &mut cache, None, 3),
                "clean datapath must pass at {width}"
            );
            for kind in [
                PlaneFault::LaneUpset,
                PlaneFault::StuckComparator { level: true },
                PlaneFault::StuckComparator { level: false },
                PlaneFault::CachePoison,
            ] {
                let mut cache = PatternCache::new(4);
                let sticky = StickyFault {
                    kind,
                    onset: 0,
                    salt: 0x1234_5677, // odd, like the plan draws
                };
                assert!(
                    !known_answer_test(1, width, &mut cache, Some(sticky), 3),
                    "{kind:?} must fail the KAT at {width}"
                );
            }
        }
    }

    #[test]
    fn ladder_rungs_descend_from_every_width() {
        assert_eq!(
            ladder_rungs(SuperWidth::W8),
            &[SuperWidth::W8, SuperWidth::W4, SuperWidth::W1]
        );
        assert_eq!(
            ladder_rungs(SuperWidth::W4),
            &[SuperWidth::W4, SuperWidth::W1]
        );
        assert_eq!(ladder_rungs(SuperWidth::W1), &[SuperWidth::W1]);
    }

    #[test]
    fn slot_pool_leases_and_releases() {
        let pool = SlotPool::new(100);
        assert_eq!(pool.capacity(), 100);
        let a = pool.try_lease(60).expect("fits");
        assert_eq!(a.bytes(), 60);
        assert_eq!(pool.in_flight(), 60);
        assert_eq!(pool.available(), 40);
        assert!(pool.try_lease(41).is_none(), "over budget");
        let b = pool.try_lease(40).expect("exactly fits");
        assert_eq!(pool.available(), 0);
        drop(a);
        assert_eq!(pool.available(), 60);
        drop(b);
        assert_eq!(pool.in_flight(), 0);
        // Zero-byte leases always succeed, even at capacity.
        let _full = pool.try_lease(100).unwrap();
        assert!(pool.try_lease(0).is_some());
    }

    #[test]
    fn slot_pool_is_exact_under_contention() {
        let pool = SlotPool::new(64);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                let mut granted = 0u64;
                for _ in 0..1000 {
                    if let Some(lease) = pool.try_lease(1) {
                        granted += 1;
                        assert!(pool.in_flight() <= 64, "budget overshot");
                        drop(lease);
                    }
                }
                granted
            }));
        }
        let granted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(granted > 0);
        assert_eq!(pool.in_flight(), 0, "every lease returned");
    }
}
