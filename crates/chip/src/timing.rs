//! Clocking and the 250 ns/character data rate (paper §1).
//!
//! The prototype's measured rate — one character every 250 ns — is an
//! architectural property: every beat is one phase of the two-phase
//! clock, the bus carries one character per beat alternating pattern
//! and text, so a text character is consumed every *two* beats. The
//! phase must be long enough for the slowest cell to latch and settle;
//! nothing else matters, and in particular the pattern length doesn't.
//! [`ClockModel`] derives the phase from per-gate delays and exposes
//! that reasoning as numbers.

/// Switching-delay assumptions for the NMOS gate library, in
/// nanoseconds. Defaults are calibrated so the comparator's critical
/// path yields the paper's measured 125 ns phase / 250 ns character
/// period — we cannot re-measure 1979 silicon, but the *structure* of
/// the budget (which path dominates, what happens if a gate slows
/// down) is faithful.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateDelays {
    /// Pass-transistor charge time onto a storage node.
    pub pass_ns: f64,
    /// Inverter propagation.
    pub inverter_ns: f64,
    /// XNOR/XOR complex gate propagation.
    pub xnor_ns: f64,
    /// NAND/NOR propagation.
    pub nand_ns: f64,
    /// AOI (and-or-invert) complex gate propagation.
    pub aoi_ns: f64,
    /// Clock margin for skew and non-overlap dead time.
    pub margin_ns: f64,
}

impl Default for GateDelays {
    fn default() -> Self {
        GateDelays {
            pass_ns: 18.0,
            inverter_ns: 12.0,
            xnor_ns: 34.0,
            nand_ns: 26.0,
            aoi_ns: 36.0,
            margin_ns: 15.0,
        }
    }
}

/// The derived two-phase clock and its data rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockModel {
    phase_ns: f64,
}

impl ClockModel {
    /// Derives the phase length from gate delays: the longest settle
    /// path any cell must complete within one phase.
    pub fn from_delays(d: &GateDelays) -> Self {
        // Comparator: latch p/s/d, regenerate through the inverter,
        // test equality, fold into d. (Figure 3-6's path.)
        let comparator = d.pass_ns + d.inverter_ns + d.xnor_ns + d.nand_ns;
        // Accumulator: latch inputs, compute m̄ (AOI), m, t_next (NOR +
        // inverter), stage the master.
        let accumulator = d.pass_ns + d.aoi_ns + d.inverter_ns + d.nand_ns + d.pass_ns;
        let phase_ns = comparator.max(accumulator) + d.margin_ns;
        ClockModel { phase_ns }
    }

    /// The prototype's clock, from the default delay budget.
    pub fn prototype() -> Self {
        Self::from_delays(&GateDelays::default())
    }

    /// One beat — one clock phase — in nanoseconds.
    pub fn beat_ns(&self) -> f64 {
        self.phase_ns
    }

    /// Time per text character: two beats (the bus alternates pattern
    /// and text characters, Figure 3-1).
    pub fn char_period_ns(&self) -> f64 {
        2.0 * self.phase_ns
    }

    /// Sustained text throughput in characters per second.
    pub fn chars_per_second(&self) -> f64 {
        1e9 / self.char_period_ns()
    }

    /// Wall-clock time to match a text of `text_len` characters on an
    /// array of `cells` cells, including pipeline fill and drain. The
    /// pattern length does not appear: that is the point.
    pub fn time_to_match_ns(&self, text_len: usize, cells: usize) -> f64 {
        let beats = 2 * text_len + 2 * cells + 2;
        beats as f64 * self.phase_ns
    }

    /// Effective throughput (chars/s) for a finite text, approaching
    /// [`chars_per_second`](Self::chars_per_second) as the text grows.
    pub fn effective_rate(&self, text_len: usize, cells: usize) -> f64 {
        text_len as f64 / (self.time_to_match_ns(text_len, cells) * 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_hits_the_papers_rate() {
        let clock = ClockModel::prototype();
        // One character every 250 ns, within the calibration tolerance.
        assert!(
            (clock.char_period_ns() - 250.0).abs() < 5.0,
            "char period {} ns",
            clock.char_period_ns()
        );
        assert!(clock.chars_per_second() > 3.9e6);
    }

    #[test]
    fn rate_is_independent_of_pattern_length() {
        // The same clock serves any pattern; only pipeline fill depends
        // on the cell count, vanishing for long texts.
        let clock = ClockModel::prototype();
        let r8 = clock.effective_rate(1_000_000, 8);
        let r640 = clock.effective_rate(1_000_000, 640);
        assert!((r8 - r640).abs() / r8 < 0.01, "{r8} vs {r640}");
    }

    #[test]
    fn slower_gates_slow_the_clock() {
        let mut d = GateDelays::default();
        let base = ClockModel::from_delays(&d);
        d.xnor_ns *= 2.0;
        let slow = ClockModel::from_delays(&d);
        assert!(slow.beat_ns() > base.beat_ns());
    }

    #[test]
    fn fill_cost_shrinks_relatively_with_text_length() {
        let clock = ClockModel::prototype();
        let short = clock.effective_rate(100, 64);
        let long = clock.effective_rate(1_000_000, 64);
        assert!(long > short);
        assert!(long <= clock.chars_per_second() * 1.001);
    }

    #[test]
    fn paper_comparison_memory_bandwidth() {
        // "higher than the memory bandwidth of most conventional
        // computers": a 1979 minicomputer moved well under 4M
        // chars/sec; the chip sustains 4M.
        let clock = ClockModel::prototype();
        assert!(clock.chars_per_second() >= 4.0e6 * 0.96);
    }
}
