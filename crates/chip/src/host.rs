//! The host-computer attachment of Figure 1-1.
//!
//! "Special-purpose VLSI chips can be used as peripheral devices
//! attached to a conventional host computer. The resulting system can
//! be considered as an efficient general-purpose computer, if many
//! types of chips are attached." [`HostBus`] models the pattern
//! matcher as such a peripheral, the way a device driver sees it:
//! load a pattern, stream text bytes through a FIFO, take a match
//! interrupt, read match positions from the result queue. The paper's
//! on-line property — one result per character at fixed latency, no
//! buffering of the text — is what makes this interface natural.
//!
//! # Example
//!
//! The driver's life cycle on Figure 3-1's workload (`AXC` against
//! `ABCAACC`, written as raw symbol values `A=0, B=1, C=2`):
//!
//! ```
//! use pm_chip::host::HostBus;
//! use pm_systolic::symbol::Pattern;
//!
//! let mut bus = HostBus::new(8);
//! bus.load_pattern(&Pattern::parse("AXC").unwrap()).unwrap();
//! bus.write(&[0, 1, 2, 0, 0, 2, 2]).unwrap();
//! bus.flush().unwrap();
//! assert!(bus.irq_pending());
//! let first = bus.read_event().unwrap();
//! assert_eq!((first.start, first.end), (0, 2)); // "ABC" matches A·C
//! ```

use pm_systolic::engine::Driver;
use pm_systolic::error::Error;
use pm_systolic::semantics::BooleanMatch;
use pm_systolic::symbol::{Pattern, Symbol};
use std::collections::VecDeque;

/// A match reported by the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchEvent {
    /// Text position (byte index) at which the match *ends*.
    pub end: u64,
    /// Text position at which the match *starts*.
    pub start: u64,
}

/// Device status, as a driver would read it from a status register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceState {
    /// Powered up, no pattern loaded.
    Idle,
    /// Pattern loaded; text may be streamed.
    Streaming,
    /// The hardware array is out of service; a software matcher is
    /// standing in for it (see `recovery::ResilientHostBus`).
    Degraded,
}

/// Protocol errors a sloppy driver can provoke — or a sick device can
/// report.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HostError {
    /// Text written before a pattern was loaded.
    NoPattern,
    /// A text byte outside the device's alphabet.
    BadByte(u8),
    /// The pattern could not be loaded.
    BadPattern(Error),
    /// The device stopped producing results: the host's watchdog saw no
    /// result strobe for `beats` array beats after one was due. This is
    /// the host-observed face of a hardware fault (e.g. a dead result
    /// driver pin) and what triggers the recovery cascade's emergency
    /// scrub.
    Stalled {
        /// Beats the watchdog waited past the device's fixed latency.
        beats: u64,
    },
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::NoPattern => write!(f, "text written with no pattern loaded"),
            HostError::BadByte(b) => write!(f, "text byte {b:#04x} outside the alphabet"),
            HostError::BadPattern(e) => write!(f, "pattern rejected: {e}"),
            HostError::Stalled { beats } => {
                write!(f, "device produced no result for {beats} beats past due")
            }
        }
    }
}

impl std::error::Error for HostError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HostError::BadPattern(e) => Some(e),
            _ => None,
        }
    }
}

impl From<Error> for HostError {
    fn from(e: Error) -> Self {
        HostError::BadPattern(e)
    }
}

/// Retry discipline for a driver talking to possibly-sick hardware:
/// how long to wait for a result, how many times to re-test a chip
/// before condemning it, and how the wait grows between attempts.
///
/// Exponential backoff between built-in-self-test retries separates
/// transient upsets (a supply glitch — passes on retry) from hard
/// stuck-at faults (§4's fabrication defects — fail every retry and
/// get the chip condemned). Optional deterministic jitter
/// ([`jitter_permille`](Self::jitter_permille)) decorrelates many
/// retriers sharing one sick resource without sacrificing
/// reproducibility, and
/// [`backoff_cap_beats`](Self::backoff_cap_beats) is the documented
/// saturation cap: no attempt number or jitter draw ever waits longer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Characters the watchdog waits past the device's fixed latency
    /// before declaring [`HostError::Stalled`].
    pub stall_timeout_chars: u64,
    /// BIST re-runs granted to a failing chip before it is condemned.
    pub max_retries: u32,
    /// Beats of idle backoff before the first retry.
    pub backoff_base_beats: u64,
    /// Multiplier applied to the backoff per further retry.
    pub backoff_factor: u64,
    /// Maximum extra jitter as a fraction of the un-jittered backoff,
    /// in per mille (250 = up to +25 %). 0 (the default) disables
    /// jitter, making the schedule exactly geometric. The jitter is
    /// drawn from a seeded xorshift keyed by
    /// ([`jitter_seed`](Self::jitter_seed), attempt), so equal
    /// policies always produce equal schedules.
    pub jitter_permille: u32,
    /// Seed for the deterministic jitter stream; irrelevant while
    /// [`jitter_permille`](Self::jitter_permille) is 0.
    pub jitter_seed: u64,
    /// Saturation cap in beats: the computed backoff (growth *and*
    /// jitter included) is clamped to this value, so a runaway attempt
    /// counter cannot schedule an unbounded wait. Defaults to
    /// `u64::MAX`, i.e. saturate only at the numeric limit.
    pub backoff_cap_beats: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            stall_timeout_chars: 16,
            max_retries: 2,
            backoff_base_beats: 8,
            backoff_factor: 4,
            jitter_permille: 0,
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
            backoff_cap_beats: u64::MAX,
        }
    }
}

impl RetryPolicy {
    /// Backoff in beats before retry number `attempt` (1-based):
    /// `base × factor^(attempt−1)`, plus up to
    /// [`jitter_permille`](Self::jitter_permille)‰ of deterministic
    /// jitter, clamped to
    /// [`backoff_cap_beats`](Self::backoff_cap_beats). Computed in
    /// closed form (overflow saturates), so an overflowing attempt
    /// counter costs O(log attempt), not 2³² multiplications.
    pub fn backoff_beats(&self, attempt: u32) -> u64 {
        let growth = attempt.saturating_sub(1);
        let beats = match self.backoff_factor.checked_pow(growth) {
            Some(f) => self.backoff_base_beats.saturating_mul(f),
            None if self.backoff_base_beats == 0 => 0,
            None => u64::MAX,
        };
        let jittered = if self.jitter_permille == 0 || beats == 0 {
            beats
        } else {
            let span = ((u128::from(beats) * u128::from(self.jitter_permille)) / 1000)
                .min(u128::from(u64::MAX)) as u64;
            let mut rng = crate::faults::XorShift64::new(
                self.jitter_seed ^ crate::faults::mix(attempt.into()),
            );
            beats.saturating_add(rng.bounded(span))
        };
        jittered.min(self.backoff_cap_beats)
    }
}

/// The pattern matcher as a bus peripheral.
#[derive(Debug, Clone)]
pub struct HostBus {
    cells: usize,
    device: Option<Device>,
}

#[derive(Debug, Clone)]
struct Device {
    driver: Driver<BooleanMatch>,
    pattern: Pattern,
    events: VecDeque<MatchEvent>,
    chars_in: u64,
}

impl HostBus {
    /// Installs a matcher card with `cells` character cells.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is zero.
    pub fn new(cells: usize) -> Self {
        assert!(cells > 0, "a matcher card needs cells");
        HostBus {
            cells,
            device: None,
        }
    }

    /// Device state.
    pub fn state(&self) -> DeviceState {
        if self.device.is_some() {
            DeviceState::Streaming
        } else {
            DeviceState::Idle
        }
    }

    /// Array capacity of the card.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Loads (or replaces) the pattern; resets the stream and clears
    /// pending events.
    ///
    /// # Errors
    ///
    /// [`HostError::BadPattern`] if the pattern doesn't fit the card.
    pub fn load_pattern(&mut self, pattern: &Pattern) -> Result<(), HostError> {
        let driver = Driver::new(BooleanMatch, pattern.symbols().to_vec(), &[self.cells])
            .map_err(HostError::BadPattern)?;
        self.device = Some(Device {
            driver,
            pattern: pattern.clone(),
            events: VecDeque::new(),
            chars_in: 0,
        });
        Ok(())
    }

    /// Streams one text byte through the device. Matches surface in
    /// the event queue after the array's fixed latency.
    ///
    /// # Errors
    ///
    /// [`HostError::NoPattern`] or [`HostError::BadByte`].
    pub fn write_byte(&mut self, byte: u8) -> Result<(), HostError> {
        let dev = self.device.as_mut().ok_or(HostError::NoPattern)?;
        if !dev.pattern.alphabet().contains(byte) {
            return Err(HostError::BadByte(byte));
        }
        dev.chars_in += 1;
        let k = dev.pattern.k() as u64;
        for (seq, hit) in dev.driver.feed(Symbol::new(byte)) {
            if hit && seq >= k {
                dev.events.push_back(MatchEvent {
                    end: seq,
                    start: seq - k,
                });
            }
        }
        Ok(())
    }

    /// Streams a whole buffer.
    ///
    /// # Errors
    ///
    /// As [`write_byte`](Self::write_byte); stops at the first bad byte.
    pub fn write(&mut self, bytes: &[u8]) -> Result<(), HostError> {
        for &b in bytes {
            self.write_byte(b)?;
        }
        Ok(())
    }

    /// Flushes the pipeline at end of stream so that every match for
    /// bytes already written becomes visible.
    ///
    /// # Errors
    ///
    /// [`HostError::NoPattern`] if no pattern is loaded.
    pub fn flush(&mut self) -> Result<(), HostError> {
        let dev = self.device.as_mut().ok_or(HostError::NoPattern)?;
        let k = dev.pattern.k() as u64;
        for (seq, hit) in dev.driver.drain() {
            if hit && seq >= k {
                dev.events.push_back(MatchEvent {
                    end: seq,
                    start: seq - k,
                });
            }
        }
        Ok(())
    }

    /// The interrupt line: asserted while events are queued.
    pub fn irq_pending(&self) -> bool {
        self.device.as_ref().is_some_and(|d| !d.events.is_empty())
    }

    /// Pops the oldest match event (the driver's interrupt handler).
    pub fn read_event(&mut self) -> Option<MatchEvent> {
        self.device.as_mut()?.events.pop_front()
    }

    /// Bytes accepted since the pattern was loaded.
    pub fn bytes_streamed(&self) -> u64 {
        self.device.as_ref().map_or(0, |d| d.chars_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::text_from_letters;

    fn device_with(pattern: &str) -> HostBus {
        let p = Pattern::parse(pattern).unwrap();
        let mut bus = HostBus::new(8);
        bus.load_pattern(&p).unwrap();
        bus
    }

    #[test]
    fn protocol_requires_a_pattern_first() {
        let mut bus = HostBus::new(8);
        assert_eq!(bus.state(), DeviceState::Idle);
        assert_eq!(bus.write_byte(0), Err(HostError::NoPattern));
        assert_eq!(bus.flush(), Err(HostError::NoPattern));
    }

    #[test]
    fn bad_bytes_rejected() {
        let mut bus = device_with("AB"); // 2-bit alphabet
        assert_eq!(bus.write_byte(9), Err(HostError::BadByte(9)));
    }

    #[test]
    fn events_match_specification() {
        let mut bus = device_with("AXC");
        let text = text_from_letters("ABCAACCAB").unwrap();
        for s in &text {
            bus.write_byte(s.value()).unwrap();
        }
        bus.flush().unwrap();
        let mut ends = Vec::new();
        while let Some(e) = bus.read_event() {
            assert_eq!(e.end - e.start, 2, "span equals pattern length - 1");
            ends.push(e.end as usize);
        }
        let p = Pattern::parse("AXC").unwrap();
        let spec: Vec<usize> = match_spec(&text, &p)
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(ends, spec);
    }

    #[test]
    fn irq_asserts_and_clears() {
        let mut bus = device_with("AA");
        bus.write(&[0, 0, 0]).unwrap();
        bus.flush().unwrap();
        assert!(bus.irq_pending());
        while bus.read_event().is_some() {}
        assert!(!bus.irq_pending());
    }

    #[test]
    fn reloading_pattern_resets_the_stream() {
        let mut bus = device_with("AA");
        bus.write(&[0, 0]).unwrap();
        assert_eq!(bus.bytes_streamed(), 2);
        let p2 = Pattern::parse("BB").unwrap();
        bus.load_pattern(&p2).unwrap();
        assert_eq!(bus.bytes_streamed(), 0);
        assert!(!bus.irq_pending());
        // New pattern matches immediately on fresh text.
        bus.write(&[1, 1]).unwrap();
        bus.flush().unwrap();
        assert_eq!(bus.read_event(), Some(MatchEvent { start: 0, end: 1 }));
    }

    #[test]
    fn oversized_pattern_rejected() {
        let mut bus = HostBus::new(4);
        let p = Pattern::parse("AAAAA").unwrap();
        assert!(matches!(
            bus.load_pattern(&p),
            Err(HostError::BadPattern(_))
        ));
    }

    #[test]
    fn error_display() {
        assert!(HostError::NoPattern.to_string().contains("no pattern"));
        assert!(HostError::BadByte(0xff).to_string().contains("0xff"));
        assert!(HostError::Stalled { beats: 12 }.to_string().contains("12"));
    }

    #[test]
    fn bad_pattern_exposes_its_cause() {
        use std::error::Error as _;
        let cause = Error::EmptyPattern;
        let e: HostError = cause.clone().into();
        assert_eq!(e, HostError::BadPattern(cause));
        assert!(e.source().is_some(), "BadPattern must chain its cause");
        assert!(HostError::NoPattern.source().is_none());
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy {
            stall_timeout_chars: 4,
            max_retries: 3,
            backoff_base_beats: 8,
            backoff_factor: 4,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_beats(1), 8);
        assert_eq!(p.backoff_beats(2), 32);
        assert_eq!(p.backoff_beats(3), 128);
        // Saturates instead of overflowing.
        let huge = RetryPolicy {
            backoff_base_beats: u64::MAX / 2,
            backoff_factor: 100,
            ..p
        };
        assert_eq!(huge.backoff_beats(5), u64::MAX);
    }

    #[test]
    fn backoff_attempt_overflow_saturates_without_looping() {
        // The closed form must saturate instantly even for an attempt
        // counter near u32::MAX (the old loop would multiply ~4 billion
        // times); with a zero base the schedule stays at zero.
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_beats(u32::MAX), u64::MAX);
        let idle = RetryPolicy {
            backoff_base_beats: 0,
            ..p
        };
        assert_eq!(idle.backoff_beats(u32::MAX), 0);
        // factor 1 never overflows: base forever.
        let flat = RetryPolicy {
            backoff_factor: 1,
            ..p
        };
        assert_eq!(flat.backoff_beats(u32::MAX), flat.backoff_base_beats);
    }

    #[test]
    fn backoff_cap_clamps_growth_and_jitter() {
        let p = RetryPolicy {
            backoff_base_beats: 8,
            backoff_factor: 4,
            backoff_cap_beats: 100,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_beats(1), 8);
        assert_eq!(p.backoff_beats(2), 32);
        assert_eq!(p.backoff_beats(3), 100); // 128 clamped
        assert_eq!(p.backoff_beats(u32::MAX), 100); // saturated then clamped
        let jittery = RetryPolicy {
            jitter_permille: 1000,
            ..p
        };
        for attempt in 1..=8 {
            assert!(jittery.backoff_beats(attempt) <= 100);
        }
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        let base = RetryPolicy {
            backoff_base_beats: 1000,
            backoff_factor: 2,
            jitter_permille: 250,
            ..RetryPolicy::default()
        };
        let twin = base;
        let mut saw_jitter = false;
        for attempt in 1..=10 {
            let plain = RetryPolicy {
                jitter_permille: 0,
                ..base
            }
            .backoff_beats(attempt);
            let jittered = base.backoff_beats(attempt);
            // Equal policies agree beat-for-beat (seeded stream).
            assert_eq!(jittered, twin.backoff_beats(attempt));
            // Jitter only ever adds, and at most 25 % here.
            assert!(jittered >= plain);
            assert!(jittered <= plain + plain / 4);
            saw_jitter |= jittered != plain;
        }
        assert!(saw_jitter, "250‰ jitter never fired across 10 attempts");
        // A different seed reshuffles the schedule.
        let reseeded = RetryPolicy {
            jitter_seed: 0xDEAD_BEEF,
            ..base
        };
        let differs = (1..=10).any(|a| reseeded.backoff_beats(a) != base.backoff_beats(a));
        assert!(differs, "independent seeds produced identical jitter");
    }
}
