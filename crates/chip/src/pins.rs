//! Pin and package budget (paper §3.4).
//!
//! "In order to make the chip extensible, more inputs and outputs must
//! be provided. Specifically, an input for the result stream and
//! outputs for the pattern and text streams must be available." This
//! module counts those pins for a given alphabet width and checks them
//! against the DIP packages available to a 1979 multi-project chip.

use std::fmt;

/// Standard dual-in-line packages of the era.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Package {
    /// 16-pin DIP.
    Dip16,
    /// 24-pin DIP.
    Dip24,
    /// 40-pin DIP.
    Dip40,
    /// 64-pin DIP (exotic in 1979).
    Dip64,
}

impl Package {
    /// Number of pins on the package.
    pub fn pins(self) -> usize {
        match self {
            Package::Dip16 => 16,
            Package::Dip24 => 24,
            Package::Dip40 => 40,
            Package::Dip64 => 64,
        }
    }

    /// All packages, smallest first.
    pub fn all() -> [Package; 4] {
        [
            Package::Dip16,
            Package::Dip24,
            Package::Dip40,
            Package::Dip64,
        ]
    }
}

impl fmt::Display for Package {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DIP-{}", self.pins())
    }
}

/// The pin requirement of a cascadable pattern-matching chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinBudget {
    /// Alphabet width in bits.
    pub bits: u32,
}

impl PinBudget {
    /// Budget for a `bits`-bit alphabet.
    pub fn new(bits: u32) -> Self {
        PinBudget { bits }
    }

    /// Signal pins: pattern in/out and text in/out (`bits` each), the
    /// `λ`/`x` control bits in/out, and the result stream in/out.
    pub fn signal_pins(&self) -> usize {
        4 * self.bits as usize + 2 * 2 + 2
    }

    /// Infrastructure pins: two clock phases, `Vdd`, ground.
    pub fn infrastructure_pins(&self) -> usize {
        4
    }

    /// Total pins required.
    pub fn total_pins(&self) -> usize {
        self.signal_pins() + self.infrastructure_pins()
    }

    /// Whether the chip fits a given package.
    pub fn fits(&self, package: Package) -> bool {
        self.total_pins() <= package.pins()
    }

    /// The smallest period package that accommodates the chip, if any.
    pub fn smallest_package(&self) -> Option<Package> {
        Package::all().into_iter().find(|p| self.fits(*p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_budget_fits_a_dip24() {
        // 2-bit characters: 8 data + 4 control + 2 result + 4 infra = 18.
        let b = PinBudget::new(2);
        assert_eq!(b.total_pins(), 18);
        assert_eq!(b.smallest_package(), Some(Package::Dip24));
    }

    #[test]
    fn ascii_chip_needs_a_dip40() {
        // 8-bit characters: 32 data + 6 + 4 = 42 → over a DIP-40.
        let b = PinBudget::new(8);
        assert_eq!(b.total_pins(), 42);
        assert_eq!(b.smallest_package(), Some(Package::Dip64));
    }

    #[test]
    fn pin_count_grows_linearly_with_bits() {
        let b1 = PinBudget::new(1).total_pins();
        let b2 = PinBudget::new(2).total_pins();
        let b3 = PinBudget::new(3).total_pins();
        assert_eq!(b2 - b1, b3 - b2);
    }

    #[test]
    fn package_display() {
        assert_eq!(Package::Dip40.to_string(), "DIP-40");
    }
}
