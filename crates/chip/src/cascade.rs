//! Multi-chip cascades (paper Figure 3-7).
//!
//! "Several pattern matching chips can then be cascaded … The inputs to
//! each chip are taken from the outputs of its neighbors, so that the
//! cells on all of the chips form a single linear array. … A cascade of
//! k chips with n cells each can match patterns of up to kn
//! characters."
//!
//! [`ChipCascade`] wraps the segment-chained driver of `pm-systolic`
//! with chip-level bookkeeping (chip count, per-chip cell count, pin
//! budget) and is verified against a monolithic array of the same total
//! size.

use crate::pins::PinBudget;
use pm_systolic::engine::{Driver, MatchBits};
use pm_systolic::error::Error;
use pm_systolic::semantics::BooleanMatch;
use pm_systolic::symbol::{Pattern, Symbol};

/// A linear cascade of identical pattern-matching chips.
#[derive(Debug, Clone)]
pub struct ChipCascade {
    driver: Driver<BooleanMatch>,
    pattern: Pattern,
    chips: usize,
    cells_per_chip: usize,
}

impl ChipCascade {
    /// Builds a cascade of `chips` chips with `cells_per_chip` cells
    /// each, prepared for `pattern`. Figure 3-7's example is
    /// `ChipCascade::new(&pattern, 5, 8)`.
    ///
    /// # Errors
    ///
    /// [`Error::NoSegments`] if `chips` is zero, or
    /// [`Error::ArrayTooSmall`] if `chips × cells_per_chip` is less
    /// than the pattern length.
    pub fn new(pattern: &Pattern, chips: usize, cells_per_chip: usize) -> Result<Self, Error> {
        let sizes = vec![cells_per_chip; chips];
        let driver = Driver::new(BooleanMatch, pattern.symbols().to_vec(), &sizes)?;
        Ok(ChipCascade {
            driver,
            pattern: pattern.clone(),
            chips,
            cells_per_chip,
        })
    }

    /// Builds a cascade from mixed stock — chips of different sizes, as
    /// a lab drawer provides. The boundary protocol is identical, so
    /// heterogeneity costs nothing (the §3.4 extensibility argument).
    ///
    /// # Errors
    ///
    /// [`Error::NoSegments`] for an empty list, or
    /// [`Error::ArrayTooSmall`] if the total is less than the pattern.
    pub fn from_stock(pattern: &Pattern, chip_sizes: &[usize]) -> Result<Self, Error> {
        let driver = Driver::new(BooleanMatch, pattern.symbols().to_vec(), chip_sizes)?;
        Ok(ChipCascade {
            driver,
            pattern: pattern.clone(),
            chips: chip_sizes.len(),
            cells_per_chip: 0,
        })
    }

    /// Number of chips in the cascade.
    pub fn chips(&self) -> usize {
        self.chips
    }

    /// Cells on each chip.
    pub fn cells_per_chip(&self) -> usize {
        self.cells_per_chip
    }

    /// Total cells — the maximum pattern length (`kn` in the paper).
    pub fn capacity(&self) -> usize {
        self.driver.total_cells()
    }

    /// The pin budget of one chip in the cascade.
    pub fn chip_pins(&self) -> PinBudget {
        PinBudget::new(self.pattern.alphabet().bits())
    }

    /// Number of board-level wires between adjacent chips: the pattern,
    /// text and result streams plus the two control bits.
    pub fn wires_between_chips(&self) -> usize {
        2 * self.pattern.alphabet().bits() as usize + 3
    }

    /// Matches a symbol stream through the cascade.
    pub fn match_symbols(&mut self, text: &[Symbol]) -> MatchBits {
        let bits = self.driver.run(text);
        MatchBits::new(bits, self.pattern.k())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::matcher::SystolicMatcher;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::text_from_letters;

    #[test]
    fn figure_3_7_five_chips_of_eight_cells() {
        // A 40-cell cascade handling a pattern of 33 characters (too
        // long for any 4 of the 5 chips).
        let pattern = Pattern::parse(
            &"ABCD"
                .repeat(8)
                .chars()
                .chain("A".chars())
                .collect::<String>(),
        )
        .unwrap();
        assert_eq!(pattern.len(), 33);
        let mut cascade = ChipCascade::new(&pattern, 5, 8).unwrap();
        assert_eq!(cascade.capacity(), 40);
        assert_eq!(cascade.chips(), 5);

        let text = text_from_letters(&"ABCD".repeat(20)).unwrap();
        let got = cascade.match_symbols(&text);
        assert_eq!(got.bits(), match_spec(&text, &pattern));

        // And identical to one monolithic 40-cell array.
        let mut mono = SystolicMatcher::with_cells(&pattern, 40).unwrap();
        assert_eq!(got.bits(), mono.match_symbols(&text).bits());
    }

    #[test]
    fn capacity_check_rejects_undersized_cascade() {
        let pattern = Pattern::parse(&"AB".repeat(9)).unwrap(); // 18 chars
        assert!(matches!(
            ChipCascade::new(&pattern, 2, 8),
            Err(Error::ArrayTooSmall {
                cells: 16,
                pattern_len: 18
            })
        ));
    }

    #[test]
    fn wires_between_chips_counted() {
        let pattern = Pattern::parse("AB").unwrap(); // 2-bit alphabet
        let cascade = ChipCascade::new(&pattern, 2, 4).unwrap();
        // p(2) + s(2) + λ + x + r = 7.
        assert_eq!(cascade.wires_between_chips(), 7);
        assert_eq!(cascade.chip_pins().total_pins(), 18);
    }

    #[test]
    fn mixed_stock_cascade_works() {
        let pattern = Pattern::parse(&"AB".repeat(7)).unwrap(); // 14 chars
        let text = text_from_letters(&"AB".repeat(20)).unwrap();
        let mut mixed = ChipCascade::from_stock(&pattern, &[8, 4, 2, 1]).unwrap();
        assert_eq!(mixed.capacity(), 15);
        assert_eq!(mixed.chips(), 4);
        assert_eq!(
            mixed.match_symbols(&text).bits(),
            match_spec(&text, &pattern)
        );
    }

    #[test]
    fn single_chip_cascade_is_just_a_chip() {
        let pattern = Pattern::parse("ABA").unwrap();
        let text = text_from_letters("ABABABA").unwrap();
        let mut cascade = ChipCascade::new(&pattern, 1, 8).unwrap();
        assert_eq!(
            cascade.match_symbols(&text).bits(),
            match_spec(&text, &pattern)
        );
    }
}
