//! Lightweight shared counters for the throughput engine.
//!
//! The paper quotes one headline number — 4.0 Mchar/s — and the
//! reproduction's scheduler needs to report its own equivalents without
//! perturbing the hot path it is measuring. [`Counter`] is a relaxed
//! atomic that worker threads bump freely; [`ThroughputCounters`]
//! groups the ones the scheduler maintains and folds them into a
//! [`CounterSnapshot`] of derived rates (chars/sec, lane occupancy,
//! cache hit rate) at reporting time.
//!
//! Relaxed ordering is sufficient: counters are statistics, not
//! synchronisation. The scheduler joins its workers before reading, so
//! every increment is visible by the time a snapshot is taken.
//!
//! ```
//! use pm_chip::counters::ThroughputCounters;
//! use std::time::Duration;
//!
//! let c = ThroughputCounters::new();
//! c.chars.add(500_000);
//! c.lane_slots_used.add(96);
//! c.lane_slots_total.add(128);
//! c.cache_hits.add(3);
//! c.cache_misses.add(1);
//! let snap = c.snapshot(Duration::from_millis(125));
//! assert_eq!(snap.chars_per_sec() as u64, 4_000_000); // the paper's rate
//! assert_eq!(snap.lane_occupancy(), 0.75);
//! assert_eq!(snap.cache_hit_rate(), 0.75);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing event counter shared between threads.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The counters the throughput scheduler maintains while running.
#[derive(Debug, Default)]
pub struct ThroughputCounters {
    /// Text characters pushed through an engine (all lanes, all jobs).
    pub chars: Counter,
    /// Jobs completed.
    pub jobs: Counter,
    /// Word batches executed.
    pub batches: Counter,
    /// Lane slots actually carrying a stream, summed over batches.
    pub lane_slots_used: Counter,
    /// Lane slots available (64 × batches).
    pub lane_slots_total: Counter,
    /// Compiled-pattern cache hits.
    pub cache_hits: Counter,
    /// Compiled-pattern cache misses (compilations performed).
    pub cache_misses: Counter,
}

impl ThroughputCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds the current counts and a wall-clock duration into derived
    /// rates.
    pub fn snapshot(&self, elapsed: Duration) -> CounterSnapshot {
        CounterSnapshot {
            chars: self.chars.get(),
            jobs: self.jobs.get(),
            batches: self.batches.get(),
            lane_slots_used: self.lane_slots_used.get(),
            lane_slots_total: self.lane_slots_total.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            elapsed,
        }
    }
}

/// A point-in-time reading of [`ThroughputCounters`] with the derived
/// rates the EXPERIMENTS table reports.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Text characters processed.
    pub chars: u64,
    /// Jobs completed.
    pub jobs: u64,
    /// Word batches executed.
    pub batches: u64,
    /// Lane slots carrying a stream.
    pub lane_slots_used: u64,
    /// Lane slots available.
    pub lane_slots_total: u64,
    /// Pattern-cache hits.
    pub cache_hits: u64,
    /// Pattern-cache misses.
    pub cache_misses: u64,
    /// Wall-clock time covered by this snapshot.
    pub elapsed: Duration,
}

impl CounterSnapshot {
    /// Characters per second over the snapshot window (0 for an empty
    /// window).
    pub fn chars_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.chars as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of lane slots that carried a stream (1.0 = every word
    /// batch was full).
    pub fn lane_occupancy(&self) -> f64 {
        if self.lane_slots_total > 0 {
            self.lane_slots_used as f64 / self.lane_slots_total as f64
        } else {
            0.0
        }
    }

    /// Fraction of pattern lookups served from the compiled cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total > 0 {
            self.cache_hits as f64 / total as f64
        } else {
            0.0
        }
    }
}

impl fmt::Display for CounterSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} jobs, {} chars in {:.3} s → {:.2} Mchar/s; {} batches at {:.0} % lane occupancy; cache {:.0} % hits",
            self.jobs,
            self.chars,
            self.elapsed.as_secs_f64(),
            self.chars_per_sec() / 1e6,
            self.batches,
            self.lane_occupancy() * 100.0,
            self.cache_hit_rate() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_threads() {
        let c = ThroughputCounters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.chars.add(2);
                    }
                });
            }
        });
        assert_eq!(c.chars.get(), 8000);
    }

    #[test]
    fn empty_snapshot_has_no_rates() {
        let snap = ThroughputCounters::new().snapshot(Duration::ZERO);
        assert_eq!(snap.chars_per_sec(), 0.0);
        assert_eq!(snap.lane_occupancy(), 0.0);
        assert_eq!(snap.cache_hit_rate(), 0.0);
    }

    #[test]
    fn display_mentions_rate_and_occupancy() {
        let c = ThroughputCounters::new();
        c.jobs.add(2);
        c.chars.add(1_000_000);
        c.batches.add(1);
        c.lane_slots_used.add(32);
        c.lane_slots_total.add(64);
        let text = c.snapshot(Duration::from_secs(1)).to_string();
        assert!(text.contains("1.00 Mchar/s"), "{text}");
        assert!(text.contains("50 % lane occupancy"), "{text}");
    }
}
