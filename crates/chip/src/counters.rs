//! Lightweight shared counters for the throughput engine.
//!
//! The paper quotes one headline number — 4.0 Mchar/s — and the
//! reproduction's scheduler needs to report its own equivalents without
//! perturbing the hot path it is measuring. [`Counter`] is a relaxed
//! atomic that worker threads bump freely; [`ThroughputCounters`]
//! groups the ones the scheduler maintains and folds them into a
//! [`CounterSnapshot`] of derived rates (chars/sec, lane occupancy,
//! cache hit rate) at reporting time.
//!
//! Relaxed ordering is sufficient: counters are statistics, not
//! synchronisation. The scheduler joins its workers before reading, so
//! every increment is visible by the time a snapshot is taken.
//!
//! ```
//! use pm_chip::counters::ThroughputCounters;
//! use std::time::Duration;
//!
//! let c = ThroughputCounters::new();
//! c.chars.add(500_000);
//! c.lane_slots_used.add(96);
//! c.lane_slots_total.add(128);
//! c.cache_hits.add(3);
//! c.cache_misses.add(1);
//! let snap = c.snapshot(Duration::from_millis(125));
//! assert_eq!(snap.chars_per_sec() as u64, 4_000_000); // the paper's rate
//! assert_eq!(snap.lane_occupancy(), 0.75);
//! assert_eq!(snap.cache_hit_rate(), 0.75);
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A monotonically increasing event counter shared between threads.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The counters the throughput scheduler maintains while running.
#[derive(Debug, Default)]
pub struct ThroughputCounters {
    /// Text characters pushed through an engine (all lanes, all jobs).
    pub chars: Counter,
    /// Jobs completed.
    pub jobs: Counter,
    /// Word batches executed.
    pub batches: Counter,
    /// Lane slots actually carrying a stream, summed over batches.
    pub lane_slots_used: Counter,
    /// Lane slots available (64 × batches).
    pub lane_slots_total: Counter,
    /// Compiled-pattern cache hits.
    pub cache_hits: Counter,
    /// Compiled-pattern cache misses (compilations performed).
    pub cache_misses: Counter,
    /// Batches a worker stole from a sibling's deque.
    pub steals: Counter,
}

impl ThroughputCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds the current counts and a wall-clock duration into derived
    /// rates.
    pub fn snapshot(&self, elapsed: Duration) -> CounterSnapshot {
        CounterSnapshot {
            chars: self.chars.get(),
            jobs: self.jobs.get(),
            batches: self.batches.get(),
            lane_slots_used: self.lane_slots_used.get(),
            lane_slots_total: self.lane_slots_total.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            steals: self.steals.get(),
            elapsed,
        }
    }
}

/// A point-in-time reading of [`ThroughputCounters`] with the derived
/// rates the EXPERIMENTS table reports.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Text characters processed.
    pub chars: u64,
    /// Jobs completed.
    pub jobs: u64,
    /// Word batches executed.
    pub batches: u64,
    /// Lane slots carrying a stream.
    pub lane_slots_used: u64,
    /// Lane slots available.
    pub lane_slots_total: u64,
    /// Pattern-cache hits.
    pub cache_hits: u64,
    /// Pattern-cache misses.
    pub cache_misses: u64,
    /// Batches stolen across worker deques.
    pub steals: u64,
    /// Wall-clock time covered by this snapshot.
    pub elapsed: Duration,
}

impl CounterSnapshot {
    /// Characters per second over the snapshot window (0 for an empty
    /// window).
    pub fn chars_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.chars as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of lane slots that carried a stream (1.0 = every word
    /// batch was full).
    pub fn lane_occupancy(&self) -> f64 {
        if self.lane_slots_total > 0 {
            self.lane_slots_used as f64 / self.lane_slots_total as f64
        } else {
            0.0
        }
    }

    /// Fraction of pattern lookups served from the compiled cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total > 0 {
            self.cache_hits as f64 / total as f64
        } else {
            0.0
        }
    }
}

impl fmt::Display for CounterSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} jobs, {} chars in {:.3} s → {:.2} Mchar/s; {} batches at {:.0} % lane occupancy; cache {:.0} % hits",
            self.jobs,
            self.chars,
            self.elapsed.as_secs_f64(),
            self.chars_per_sec() / 1e6,
            self.batches,
            self.lane_occupancy() * 100.0,
            self.cache_hit_rate() * 100.0,
        )
    }
}

/// A sliding-window rate estimator over a monotonic count.
///
/// The lifetime-average rate ([`CounterSnapshot::chars_per_sec`] over
/// elapsed-since-start) is the right number for a finite benchmark run,
/// but a long-running scheduler asking "how fast am I going *now*?"
/// must not dilute the answer with hours of history. `RateWindow` keeps
/// `(instant, count)` samples covering the last `window` of wall clock
/// and reports the rate across the span it retains.
///
/// Feed it the same monotonic counter it is windowing — typically
/// `window.sample(counters.chars.get())` on whatever reporting cadence
/// the caller already has.
///
/// ```
/// use pm_chip::counters::RateWindow;
/// use std::time::{Duration, Instant};
///
/// let w = RateWindow::new(Duration::from_secs(10));
/// let t0 = Instant::now();
/// w.sample_at(0, t0);
/// w.sample_at(4_000_000, t0 + Duration::from_secs(1));
/// assert_eq!(w.rate().round() as u64, 4_000_000); // the paper's rate
/// ```
#[derive(Debug)]
pub struct RateWindow {
    window: Duration,
    samples: Mutex<VecDeque<(Instant, u64)>>,
}

impl RateWindow {
    /// A window covering the last `window` of wall clock.
    pub fn new(window: Duration) -> Self {
        RateWindow {
            window,
            samples: Mutex::new(VecDeque::new()),
        }
    }

    /// Records the counter's current value now.
    pub fn sample(&self, count: u64) {
        self.sample_at(count, Instant::now());
    }

    /// Records a `(count, instant)` observation and evicts samples that
    /// have slid out of the window. Exposed separately so tests can
    /// drive synthetic clocks; `at` values must be non-decreasing.
    pub fn sample_at(&self, count: u64, at: Instant) {
        let mut samples = self.samples.lock().expect("rate window poisoned");
        samples.push_back((at, count));
        // Keep one sample at-or-before the window edge so the span
        // always covers the full window once enough history exists.
        while samples.len() > 2 {
            let second = samples[1].0;
            if at.saturating_duration_since(second) >= self.window {
                samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Events per second across the retained window: the count delta
    /// between the oldest and newest samples over their time span.
    /// Returns 0.0 until two samples with distinct instants exist.
    pub fn rate(&self) -> f64 {
        let samples = self.samples.lock().expect("rate window poisoned");
        let (Some(&(t0, c0)), Some(&(t1, c1))) = (samples.front(), samples.back()) else {
            return 0.0;
        };
        let span = t1.saturating_duration_since(t0).as_secs_f64();
        if span > 0.0 {
            c1.saturating_sub(c0) as f64 / span
        } else {
            0.0
        }
    }

    /// The configured window length.
    pub fn window(&self) -> Duration {
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_threads() {
        let c = ThroughputCounters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.chars.add(2);
                    }
                });
            }
        });
        assert_eq!(c.chars.get(), 8000);
    }

    #[test]
    fn empty_snapshot_has_no_rates() {
        let snap = ThroughputCounters::new().snapshot(Duration::ZERO);
        assert_eq!(snap.chars_per_sec(), 0.0);
        assert_eq!(snap.lane_occupancy(), 0.0);
        assert_eq!(snap.cache_hit_rate(), 0.0);
    }

    #[test]
    fn windowed_rate_tracks_current_not_lifetime_throughput() {
        // A scheduler that ran fast for an hour then slowed to a crawl:
        // the lifetime average stays high, the window must not.
        let w = RateWindow::new(Duration::from_secs(10));
        let t0 = Instant::now();
        // One hour at 1M events/s…
        w.sample_at(0, t0);
        w.sample_at(3_600_000_000, t0 + Duration::from_secs(3600));
        // …then 10 s at 100 events/s.
        for i in 1..=10u64 {
            w.sample_at(3_600_000_000 + 100 * i, t0 + Duration::from_secs(3600 + i));
        }
        let lifetime = 3_600_001_000.0 / 3610.0; // ≈ 997k/s
        let windowed = w.rate();
        assert!(windowed < 200.0, "windowed {windowed} should be ~100/s");
        assert!(lifetime > 900_000.0);
    }

    #[test]
    fn windowed_rate_edge_cases() {
        let w = RateWindow::new(Duration::from_secs(5));
        assert_eq!(w.rate(), 0.0); // no samples
        let t0 = Instant::now();
        w.sample_at(10, t0);
        assert_eq!(w.rate(), 0.0); // one sample: zero span
        w.sample_at(10, t0); // same instant
        assert_eq!(w.rate(), 0.0);
        w.sample_at(30, t0 + Duration::from_secs(2));
        assert_eq!(w.rate(), 10.0);
        assert_eq!(w.window(), Duration::from_secs(5));
    }

    #[test]
    fn display_mentions_rate_and_occupancy() {
        let c = ThroughputCounters::new();
        c.jobs.add(2);
        c.chars.add(1_000_000);
        c.batches.add(1);
        c.lane_slots_used.add(32);
        c.lane_slots_total.add(64);
        let text = c.snapshot(Duration::from_secs(1)).to_string();
        assert!(text.contains("1.00 Mchar/s"), "{text}");
        assert!(text.contains("50 % lane occupancy"), "{text}");
    }
}
