//! Planning primitives shared by the batch planner, the dictionary
//! planner, and the router's affinity planner.
//!
//! Three schedulers in this crate make the same move: put work of
//! similar pattern length next to each other so that one long pattern
//! cannot inflate the `kmax` (and therefore the per-character cost) of
//! every lane it shares a batch with. `plan_batches` buckets singleton
//! jobs before cutting mixed batches, `PatternDictionary::new` buckets
//! trie survivors before cutting resident groups, and the
//! [`Router`](crate::shard::Router) buckets pattern groups before
//! spreading them across shards. All three call [`bucket_by_len`] so
//! the discipline — a *stable* ascending sort, preserving first-seen
//! order inside each length class — is written exactly once.

/// Stable-sorts `items` ascending by `len_of`, the length-bucketing
/// pass every planner in this crate applies before cutting work into
/// lane-sized groups.
///
/// Stability is the load-bearing part of the contract: equal-length
/// items keep their prior order, so the dictionary's prefix-adjacent
/// trie walk and the batch planner's first-seen job order survive
/// bucketing.
///
/// ```
/// use pm_chip::plan::bucket_by_len;
///
/// let mut words = vec!["bb", "a", "cc", "dddd", "e"];
/// bucket_by_len(&mut words, |w| w.len());
/// // Ascending by length; "bb" still precedes "cc", "a" precedes "e".
/// assert_eq!(words, vec!["a", "e", "bb", "cc", "dddd"]);
/// ```
pub fn bucket_by_len<T>(items: &mut [T], len_of: impl FnMut(&T) -> usize) {
    items.sort_by_key(len_of);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_stable_within_a_length_class() {
        let mut items = vec![(3, 'a'), (1, 'b'), (3, 'c'), (1, 'd'), (2, 'e')];
        bucket_by_len(&mut items, |&(len, _)| len);
        assert_eq!(
            items,
            vec![(1, 'b'), (1, 'd'), (2, 'e'), (3, 'a'), (3, 'c')]
        );
    }
}
