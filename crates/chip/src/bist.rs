//! Built-in self-test (BIST) for one pattern-matching chip.
//!
//! §4 of the paper, on cell logic: "In designing the circuits,
//! consideration must be given to how the chip will be tested after
//! fabrication." The `pm-nmos` fault machinery does that arithmetic at
//! fabrication time; this module repackages the same production test
//! program so that a *running system* can re-apply it in the field —
//! at attach time and periodically while streaming (scrubbing) — which
//! is the detection half of §5's requirement that "a defective circuit
//! \[be\] replaced by a functioning one".
//!
//! A [`BistProgram`] is a set of [`BistVector`]s: a pattern, a text and
//! the golden result bits from the executable specification. Running
//! the program against a chip ([`BistProgram::run`]) drives the chip's
//! boundary wires exactly as the host driver does and checks *all
//! three* output ports:
//!
//! * the **result** port against the golden bits (catches stuck or
//!   dead result drivers);
//! * the **text echo** — every text item must leave the far end intact
//!   (catches stuck text-bus drivers, which would corrupt *upstream*
//!   chips in a cascade while leaving this chip's own results clean);
//! * the **pattern echo** — the recirculated pattern must leave intact
//!   (catches stuck pattern-bus drivers, which would corrupt
//!   *downstream* chips).
//!
//! The single-port subtlety is why result-only self-test is not enough
//! for a cascade: a chip whose comparators are perfect can still
//! poison its neighbours through a bad boundary driver.
//!
//! # Example
//!
//! The §4 production test for an 8-cell, 2-bit chip, replayed in the
//! field against a healthy behavioural chip model:
//!
//! ```
//! use pm_chip::bist::BistProgram;
//! use pm_systolic::segment::Segment;
//! use pm_systolic::semantics::BooleanMatch;
//!
//! let program = BistProgram::standard(8, 2);
//! let mut chip = Segment::new(BooleanMatch, 8);
//! let outcome = program.run(&mut chip);
//! assert!(outcome.passed);
//! assert_eq!(outcome.beats, program.beats_bound(8));
//! ```

use pm_nmos::chip::PatternChip;
use pm_nmos::faults::{self, CoverageReport};
use pm_systolic::segment::{PatItem, Segment, SegmentIo, TxtItem};
use pm_systolic::semantics::BooleanMatch;
use pm_systolic::spec::match_spec;
use pm_systolic::symbol::{PatSym, Pattern, Symbol};
use std::fmt;

/// One self-test vector: a pattern, a text, and the golden result bits
/// the chip must reproduce.
#[derive(Debug, Clone)]
pub struct BistVector {
    /// Pattern loaded for this vector.
    pub pattern: Pattern,
    /// Text streamed through the chip.
    pub text: Vec<Symbol>,
    /// Expected result bits, from [`match_spec`].
    pub golden: Vec<bool>,
}

/// Which output port of the chip failed a self-test check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BistPort {
    /// A result bit was wrong or never produced.
    Result,
    /// A text item left the chip corrupted or missing.
    TextEcho,
    /// A recirculated pattern item left the chip corrupted or missing.
    PatternEcho,
}

impl fmt::Display for BistPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BistPort::Result => write!(f, "result port"),
            BistPort::TextEcho => write!(f, "text echo port"),
            BistPort::PatternEcho => write!(f, "pattern echo port"),
        }
    }
}

/// The first check a failing chip tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BistFailure {
    /// Index of the failing vector within the program.
    pub vector: usize,
    /// The output port that misbehaved.
    pub port: BistPort,
}

/// The outcome of running a whole [`BistProgram`] against one chip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BistOutcome {
    /// True iff every vector passed on every port.
    pub passed: bool,
    /// The first failure observed, if any.
    pub failure: Option<BistFailure>,
    /// Array beats the test occupied (the availability cost of a scrub).
    pub beats: u64,
}

/// Anything a self-test can be applied to: a bare array segment, or a
/// managed chip that models a hardware fault on its output pins (see
/// `recovery`).
pub trait BistTarget {
    /// Number of character cells on the chip.
    fn cells(&self) -> usize;
    /// Boundary wires about to leave the chip this beat.
    fn outputs(&self) -> SegmentIo<BooleanMatch>;
    /// Advances the chip one beat with the given boundary inputs.
    fn step(&mut self, input: SegmentIo<BooleanMatch>);
    /// Power-on reset between vectors.
    fn reset(&mut self);
}

impl BistTarget for Segment<BooleanMatch> {
    fn cells(&self) -> usize {
        Segment::cells(self)
    }
    fn outputs(&self) -> SegmentIo<BooleanMatch> {
        Segment::outputs(self)
    }
    fn step(&mut self, input: SegmentIo<BooleanMatch>) {
        Segment::step(self, input)
    }
    fn reset(&mut self) {
        Segment::reset(self)
    }
}

/// A self-test program: the §4 production test vectors with golden
/// outputs attached.
#[derive(Debug, Clone)]
pub struct BistProgram {
    vectors: Vec<BistVector>,
}

impl BistProgram {
    /// Builds a program from explicit vectors.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty — an empty self-test would pass
    /// every dead chip.
    pub fn new(vectors: Vec<BistVector>) -> Self {
        assert!(!vectors.is_empty(), "a BIST program needs vectors");
        BistProgram { vectors }
    }

    /// The standard field test for a chip of `cells` character cells
    /// over a `bits`-bit alphabet: the production test program of
    /// `pm_nmos::faults::standard_test_program` (a wild-card streaming
    /// vector, an all-match vector and an all-mismatch vector), with
    /// goldens from the executable specification.
    pub fn standard(cells: usize, bits: u32) -> Self {
        let vectors = faults::standard_test_program(cells, bits)
            .into_iter()
            .map(|(pattern, text)| {
                let golden = match_spec(&text, &pattern);
                BistVector {
                    pattern,
                    text,
                    golden,
                }
            })
            .collect();
        BistProgram::new(vectors)
    }

    /// The vectors of this program.
    pub fn vectors(&self) -> &[BistVector] {
        &self.vectors
    }

    /// Exact number of beats [`run`](Self::run) occupies on a chip of
    /// `cells` cells — used to budget scrub time and to bound fault
    /// detection latency.
    pub fn beats_bound(&self, cells: usize) -> u64 {
        self.vectors
            .iter()
            .map(|v| Self::vector_beats(v, cells))
            .sum()
    }

    fn vector_beats(vector: &BistVector, cells: usize) -> u64 {
        // Two beats per text character, then the drain slack the host
        // driver uses: everything in flight exits within the cell count
        // plus one pattern recirculation, doubled for safety.
        2 * vector.text.len() as u64 + 2 * (cells + 2 * vector.pattern.len() + 4) as u64
    }

    /// Runs the whole program against one chip, driving its boundary
    /// wires beat by beat and checking result, text-echo and
    /// pattern-echo ports. The chip is reset before and after each
    /// vector.
    pub fn run(&self, target: &mut impl BistTarget) -> BistOutcome {
        let mut beats = 0u64;
        for (vi, vector) in self.vectors.iter().enumerate() {
            let verdict = Self::run_vector(vector, target, &mut beats);
            if let Some(port) = verdict {
                target.reset();
                return BistOutcome {
                    passed: false,
                    failure: Some(BistFailure { vector: vi, port }),
                    beats,
                };
            }
        }
        BistOutcome {
            passed: true,
            failure: None,
            beats,
        }
    }

    /// Runs one vector; returns the first failing port, if any.
    fn run_vector(
        vector: &BistVector,
        target: &mut impl BistTarget,
        beats: &mut u64,
    ) -> Option<BistPort> {
        target.reset();
        let cells = target.cells();
        let phase = ((cells - 1) % 2) as u64;
        let psyms: &[PatSym] = vector.pattern.symbols();
        let plen = psyms.len();
        let total_beats = Self::vector_beats(vector, cells);

        let mut results: Vec<Option<bool>> = vec![None; vector.text.len()];
        let mut text_echo: Vec<Option<Symbol>> = vec![None; vector.text.len()];
        let mut pattern_echo: Vec<PatItem<PatSym>> = Vec::new();
        let mut next_txt = 0usize;

        for t in 0..total_beats {
            // Same injection schedule as the host driver: p_j at beat
            // 2j recirculating, s_i at beat 2i + φ.
            let pattern_in = if t % 2 == 0 {
                let idx = (t / 2) as usize % plen;
                Some(PatItem {
                    payload: psyms[idx],
                    lambda: idx == plen - 1,
                })
            } else {
                None
            };
            let text_in =
                if t >= phase && (t - phase).is_multiple_of(2) && next_txt < vector.text.len() {
                    let item = TxtItem {
                        payload: vector.text[next_txt],
                        seq: next_txt as u64,
                    };
                    next_txt += 1;
                    Some(item)
                } else {
                    None
                };

            // Sample the boundary wires as the tester would, then step.
            let out = target.outputs();
            if let Some(p) = out.pattern {
                pattern_echo.push(p);
            }
            if let Some(s) = out.text {
                if let Some(slot) = text_echo.get_mut(s.seq as usize) {
                    *slot = Some(s.payload);
                }
            }
            if let Some(r) = out.result {
                if let Some(slot) = results.get_mut(r.seq as usize) {
                    *slot = Some(r.value);
                }
            }
            target.step(SegmentIo {
                pattern: pattern_in,
                text: text_in,
                result: None,
            });
            *beats += 1;
        }
        target.reset();

        // Result port: every complete window must report its golden bit.
        let k = vector.pattern.k();
        for (got, want) in results.iter().zip(&vector.golden).skip(k) {
            if *got != Some(*want) {
                return Some(BistPort::Result);
            }
        }
        // Text echo: every injected character must come back intact.
        for (i, echo) in text_echo.iter().enumerate() {
            if *echo != Some(vector.text[i]) {
                return Some(BistPort::TextEcho);
            }
        }
        // Pattern echo: the recirculated pattern must come back intact,
        // λ bit included, for at least one full recirculation.
        if pattern_echo.len() < plen {
            return Some(BistPort::PatternEcho);
        }
        for (j, item) in pattern_echo.iter().enumerate() {
            let idx = j % plen;
            if item.payload != psyms[idx] || item.lambda != (idx == plen - 1) {
                return Some(BistPort::PatternEcho);
            }
        }
        None
    }

    /// Scores this program against the transistor-level chip model:
    /// enumerates single stuck-at faults over the NMOS netlist (thinned
    /// by `sample_every`) and reports how many the program detects.
    /// This ties field self-test quality back to the §4 fabrication
    /// test machinery it was derived from.
    pub fn fault_coverage(&self, chip: &PatternChip, sample_every: usize) -> CoverageReport {
        let tests: Vec<(Pattern, Vec<Symbol>)> = self
            .vectors
            .iter()
            .map(|v| (v.pattern.clone(), v.text.clone()))
            .collect();
        let fault_list = faults::enumerate_faults(chip, sample_every);
        faults::coverage_multi(chip, &tests, &fault_list)
    }

    /// Cross-checks every vector's golden bits against the NMOS
    /// transistor-level chip — the specification, the gate-level model
    /// and the self-test program must all agree.
    ///
    /// # Errors
    ///
    /// Propagates any simulation error from the netlist.
    ///
    /// # Panics
    ///
    /// Panics if a *successful* simulation disagrees with the golden
    /// bits: that is a model bug, not a runtime fault.
    pub fn golden_against_silicon(
        &self,
        chip: &PatternChip,
    ) -> Result<(), pm_nmos::error::SimError> {
        for v in &self.vectors {
            let silicon = chip.match_pattern(&v.pattern, &v.text)?;
            assert_eq!(
                silicon, v.golden,
                "NMOS chip disagrees with match_spec golden — model bug"
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_program_has_goldens_for_every_vector() {
        let program = BistProgram::standard(8, 2);
        assert_eq!(program.vectors().len(), 3);
        for v in program.vectors() {
            assert_eq!(v.golden.len(), v.text.len());
            assert_eq!(v.golden, match_spec(&v.text, &v.pattern));
        }
        // The program must be able to observe both result polarities,
        // or a stuck result driver could escape.
        let any_true = program
            .vectors()
            .iter()
            .any(|v| v.golden.iter().any(|&b| b));
        let any_false = program
            .vectors()
            .iter()
            .any(|v| v.golden.iter().skip(v.pattern.k()).any(|&b| !b));
        assert!(any_true && any_false);
    }

    #[test]
    fn healthy_chip_passes() {
        let program = BistProgram::standard(8, 2);
        let mut chip = Segment::new(BooleanMatch, 8);
        let outcome = program.run(&mut chip);
        assert!(outcome.passed, "{:?}", outcome.failure);
        assert_eq!(outcome.beats, program.beats_bound(8));
    }

    #[test]
    fn healthy_odd_sized_chip_passes() {
        let program = BistProgram::standard(5, 2);
        let mut chip = Segment::new(BooleanMatch, 5);
        assert!(program.run(&mut chip).passed);
    }

    #[test]
    #[should_panic(expected = "needs vectors")]
    fn empty_program_rejected() {
        let _ = BistProgram::new(vec![]);
    }

    #[test]
    fn beats_bound_is_exact_and_positive() {
        let program = BistProgram::standard(4, 1);
        assert!(program.beats_bound(4) > 0);
        let mut chip = Segment::new(BooleanMatch, 4);
        let outcome = program.run(&mut chip);
        assert!(outcome.passed);
        assert_eq!(outcome.beats, program.beats_bound(4));
    }

    #[test]
    fn goldens_agree_with_silicon() {
        // Small chip: the NMOS netlist simulation is transistor-level.
        let program = BistProgram::standard(2, 1);
        let chip = PatternChip::new(2, 1);
        program.golden_against_silicon(&chip).unwrap();
    }

    #[test]
    fn program_covers_most_netlist_faults() {
        let program = BistProgram::standard(2, 1);
        let chip = PatternChip::new(2, 1);
        let report = program.fault_coverage(&chip, 7);
        assert!(report.total >= 10);
        assert!(
            report.coverage() > 0.6,
            "field BIST coverage only {:.0}%",
            100.0 * report.coverage()
        );
    }
}
