//! The self-healing cascade: detect → isolate → remap → resume.
//!
//! §5 of the paper argues that regular, modular designs survive
//! defects: "Manufacturing defects make it essential to be able to
//! modify the interconnections so that a defective circuit is replaced
//! by a functioning one … This can be done easily if there are only a
//! few types of circuits with regular interconnections." The wafer
//! module applies that at fabrication time; this module closes the same
//! loop at *run* time, for a board built as the Figure 3-7 cascade plus
//! spare sockets:
//!
//! 1. **Detect** — every socket is self-tested at attach time, and the
//!    stream is periodically quiesced and re-tested (*scrubbing*) with
//!    the [`bist`](crate::bist) program derived from the §4 production
//!    test. A host-side watchdog also catches result-stream stalls (the
//!    driver's view of a dead chip) and forces an early scrub.
//! 2. **Isolate** — a chip that fails its self-test is retried with
//!    exponential backoff (transient upsets pass on retry; §4's
//!    stuck-at defects fail every time) and then condemned.
//! 3. **Remap** — the cascade is rewired around condemned sockets using
//!    the *same* serpentine-harvest logic the wafer module uses for
//!    defective cells ([`Wafer::from_defects`]), at chip granularity:
//!    spare sockets join the chain in physical order, subject to the
//!    board's bypass-wiring limit.
//! 4. **Resume** — results since the last verified checkpoint are
//!    discarded and their text replayed through the healed chain, so
//!    the *committed* result stream is bit-identical to a fault-free
//!    run. When no spare remains, the driver degrades gracefully to the
//!    software matcher of `pm-matchers` (KMP, or the naive scanner for
//!    wild-card patterns), which is golden-checked against the same
//!    specification.
//!
//! ## The commit discipline
//!
//! Results are quarantined until a scrub passes, then committed; a
//! failed scrub discards the quarantine and replays. Under the
//! permanent stuck-at fault model this makes the committed stream
//! provably golden: a fault present while a window was computed is
//! still present at the next scrub, fails self-test, and voids the
//! quarantined results it may have corrupted. The price is delivery
//! latency bounded by the scrub interval — the classic
//! availability-versus-integrity trade a device driver makes.
//!
//! # Example
//!
//! A two-chip board with one spare socket loses a chip to a stuck
//! result driver mid-stream; the committed stream still equals the
//! fault-free reference and the board stays in hardware mode:
//!
//! ```
//! use pm_chip::prelude::*;
//! use pm_systolic::prelude::*;
//! use pm_systolic::symbol::text_from_letters;
//!
//! let pattern = Pattern::parse("ABCDACBD").unwrap();
//! let text = text_from_letters(&"ABCDACBDAB".repeat(20)).unwrap();
//! let mut board =
//!     SelfHealingCascade::new(&pattern, 2, 4, 1, RecoveryPolicy::default()).unwrap();
//! board.write_all(&text[..100]).unwrap();
//! board.inject_fault(1, ChipFault::ResultStuck(true));
//! board.write_all(&text[100..]).unwrap();
//! let bits = board.finish().unwrap();
//! assert_eq!(bits.bits(), match_spec(&text, &pattern));
//! assert_eq!(board.mode(), Mode::Hardware); // healed onto the spare
//! ```

use crate::bist::{BistPort, BistProgram, BistTarget};
use crate::host::{DeviceState, HostError, MatchEvent, RetryPolicy};
use crate::wafer::Wafer;
use pm_matchers::{software_fallback, MatchError};
use pm_nmos::error::SimError;
use pm_systolic::engine::MatchBits;
use pm_systolic::error::Error as ArrayError;
use pm_systolic::segment::{PatItem, ResItem, Segment, SegmentIo, TxtItem};
use pm_systolic::semantics::BooleanMatch;
use pm_systolic::symbol::{PatSym, Pattern, Symbol};
use pm_systolic::telemetry::{SinkHandle, TraceEvent};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Unified error taxonomy of the fault-tolerance runtime: every layer's
/// error converts into it, so a driver has one type to match on.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultError {
    /// An error from the systolic array layer.
    Array(ArrayError),
    /// A host-protocol error (bad byte, no pattern, stall).
    Host(HostError),
    /// An error from the software fallback matcher.
    Software(MatchError),
    /// An error from the transistor-level simulation layer.
    Sim(SimError),
    /// Every spare is exhausted and software fallback is disabled.
    NoSpares {
        /// Number of sockets condemned so far.
        condemned: usize,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Array(e) => write!(f, "array error: {e}"),
            FaultError::Host(e) => write!(f, "host protocol error: {e}"),
            FaultError::Software(e) => write!(f, "software fallback error: {e}"),
            FaultError::Sim(e) => write!(f, "simulation error: {e}"),
            FaultError::NoSpares { condemned } => write!(
                f,
                "no spare chips remain ({condemned} sockets condemned) and fallback is disabled"
            ),
        }
    }
}

impl std::error::Error for FaultError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FaultError::Array(e) => Some(e),
            FaultError::Host(e) => Some(e),
            FaultError::Software(e) => Some(e),
            FaultError::Sim(e) => Some(e),
            FaultError::NoSpares { .. } => None,
        }
    }
}

impl From<ArrayError> for FaultError {
    fn from(e: ArrayError) -> Self {
        FaultError::Array(e)
    }
}

impl From<HostError> for FaultError {
    fn from(e: HostError) -> Self {
        FaultError::Host(e)
    }
}

impl From<MatchError> for FaultError {
    fn from(e: MatchError) -> Self {
        FaultError::Software(e)
    }
}

impl From<SimError> for FaultError {
    fn from(e: SimError) -> Self {
        FaultError::Sim(e)
    }
}

/// A permanent stuck-at fault on one chip's *output drivers* — the
/// chip-level abstraction of the §4 single-stuck-at model. Boundary
/// faults are the interesting class for a cascade: an internal cell
/// fault corrupts this chip's results (caught by the result port of
/// self-test), while a boundary fault can poison *neighbouring* chips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChipFault {
    /// The result output driver is stuck: every result leaving the chip
    /// reads `level`.
    ResultStuck(bool),
    /// The result presence line is dead: result items are silently
    /// dropped. The host sees this as a stalled stream.
    ResultDead,
    /// The text output bus is stuck: every text character leaving the
    /// chip (toward its upstream neighbour) reads this symbol value.
    TextStuck(u8),
    /// The pattern output bus is stuck: every pattern character
    /// forwarded (toward its downstream neighbour) reads this literal.
    PatternStuck(u8),
}

impl fmt::Display for ChipFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipFault::ResultStuck(level) => write!(f, "result driver stuck-at-{level}"),
            ChipFault::ResultDead => write!(f, "result presence line dead"),
            ChipFault::TextStuck(v) => write!(f, "text bus stuck at symbol {v}"),
            ChipFault::PatternStuck(v) => write!(f, "pattern bus stuck at symbol {v}"),
        }
    }
}

/// One chip socket on the board: the array segment, plus the hardware
/// fault (if any) currently afflicting its output drivers.
#[derive(Debug, Clone)]
struct ManagedChip {
    segment: Segment<BooleanMatch>,
    fault: Option<ChipFault>,
}

impl ManagedChip {
    fn new(cells: usize) -> Self {
        ManagedChip {
            segment: Segment::new(BooleanMatch, cells),
            fault: None,
        }
    }

    /// Boundary outputs with the fault applied — corruption happens at
    /// the pins, after the healthy internals computed whatever they
    /// computed.
    fn faulty_outputs(&self) -> SegmentIo<BooleanMatch> {
        let mut io = self.segment.outputs();
        match self.fault {
            None => {}
            Some(ChipFault::ResultStuck(level)) => {
                if let Some(r) = &mut io.result {
                    r.value = level;
                }
            }
            Some(ChipFault::ResultDead) => {
                io.result = None;
            }
            Some(ChipFault::TextStuck(v)) => {
                if let Some(t) = &mut io.text {
                    t.payload = Symbol::new(v);
                }
            }
            Some(ChipFault::PatternStuck(v)) => {
                if let Some(p) = &mut io.pattern {
                    p.payload = PatSym::Lit(Symbol::new(v));
                }
            }
        }
        io
    }
}

impl BistTarget for ManagedChip {
    fn cells(&self) -> usize {
        self.segment.cells()
    }
    fn outputs(&self) -> SegmentIo<BooleanMatch> {
        // The tester probes the same pins the neighbours see.
        self.faulty_outputs()
    }
    fn step(&mut self, input: SegmentIo<BooleanMatch>) {
        self.segment.step(input);
    }
    fn reset(&mut self) {
        // Reset clears array state; the fault is in the silicon and
        // survives any reset.
        self.segment.reset();
    }
}

/// Operating mode of the self-healing cascade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Matching on the hardware chain.
    Hardware,
    /// Spares exhausted; matching via the software fallback.
    Degraded,
    /// Spares exhausted and fallback disabled; the device is dead.
    Failed,
}

/// Tuning knobs of the fault-tolerance runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Characters streamed between scrubs (quiesce + self-test +
    /// commit). Smaller = faster detection, more availability lost to
    /// testing.
    pub scrub_interval_chars: u64,
    /// Board bypass-wiring limit: how many consecutive condemned
    /// sockets the chain can jump over (the wafer harvest parameter at
    /// chip granularity).
    pub max_bypass: usize,
    /// Whether to degrade to the software matcher when spares run out
    /// (`false` turns exhaustion into a hard [`FaultError::NoSpares`]).
    pub allow_fallback: bool,
    /// Host retry/timeout/backoff discipline.
    pub retry: RetryPolicy,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            scrub_interval_chars: 64,
            max_bypass: 1,
            allow_fallback: true,
            retry: RetryPolicy::default(),
        }
    }
}

/// An entry in the recovery log: what the runtime observed and did,
/// stamped with the global beat counter so detection latency and
/// recovery time are measurable in array beats.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecoveryEvent {
    /// Attach-time self-test of one socket.
    AttachBist {
        /// Socket index on the board.
        socket: usize,
        /// Whether the socket passed.
        passed: bool,
        /// Beat at which the test finished.
        beat: u64,
    },
    /// The host watchdog saw the result stream stall.
    StallDetected {
        /// First text position whose result is overdue.
        missing_from: u64,
        /// Beat at which the stall was declared.
        beat: u64,
    },
    /// A scrub self-test failed on one socket.
    BistFailed {
        /// Socket index on the board.
        socket: usize,
        /// Failing vector within the program.
        vector: usize,
        /// Output port that misbehaved.
        port: BistPort,
        /// Beat at which the failure was observed.
        beat: u64,
    },
    /// A failing socket was granted a retry after backoff.
    BistRetried {
        /// Socket index on the board.
        socket: usize,
        /// Retry attempt number (1-based).
        attempt: u32,
        /// Idle beats of backoff before this attempt.
        backoff_beats: u64,
        /// Beat at which the retry started.
        beat: u64,
    },
    /// A socket exhausted its retries and was condemned.
    Condemned {
        /// Socket index on the board.
        socket: usize,
        /// Beat of condemnation.
        beat: u64,
    },
    /// The chain was rewired around condemned sockets.
    Remapped {
        /// The new chain, as socket indices in signal order.
        chain: Vec<usize>,
        /// Healthy sockets stranded by the bypass limit.
        stranded: usize,
        /// Characters replayed through the healed chain.
        replayed_chars: u64,
        /// Beat at which streaming resumed.
        beat: u64,
    },
    /// A scrub passed and quarantined results were committed.
    Committed {
        /// Results are now final for positions `< upto`.
        upto: u64,
        /// Beat of the commit.
        beat: u64,
    },
    /// Spares exhausted; the software fallback took over.
    FallbackEngaged {
        /// Name of the fallback algorithm.
        algorithm: &'static str,
        /// Beat at which hardware matching stopped.
        beat: u64,
    },
}

/// What left the hardware chain during one beat. Text exits alongside
/// results at the same boundary, but only results feed the quarantine.
struct ChainExit {
    result: Option<ResItem<bool>>,
}

/// A Figure 3-7 cascade with spare sockets and the full
/// detect → isolate → remap → resume loop wrapped around it.
#[derive(Debug, Clone)]
pub struct SelfHealingCascade {
    pattern: Pattern,
    cells_per_chip: usize,
    /// Chips the board was designed to run with (chain length target).
    actives: usize,
    policy: RecoveryPolicy,
    bist: BistProgram,
    /// All sockets, actives first then spares, in physical order.
    pool: Vec<ManagedChip>,
    condemned: Vec<bool>,
    /// Sockets currently wired into the chain, in signal order.
    chain: Vec<usize>,
    mode: Mode,
    /// Beat counter for the injection schedule; reset on every resume.
    sched_beat: u64,
    /// Monotonic global beat counter, including scrub/test/replay
    /// overhead — the clock recovery latency is measured on.
    beat: u64,
    /// Every character ever written, in order.
    history: Vec<Symbol>,
    /// Verified-final result bits for positions `0..committed.len()`.
    committed: Vec<bool>,
    /// Quarantined results awaiting the next passing scrub.
    pending: BTreeMap<u64, bool>,
    /// All positions below this are accounted for (committed, `< k`, or
    /// quarantined) — the watchdog's stall detector.
    watermark: u64,
    chars_since_scrub: u64,
    log: Vec<RecoveryEvent>,
    /// Trace sink mirroring the recovery log as workspace-wide
    /// [`TraceEvent`]s (disabled by default).
    sink: SinkHandle,
}

impl SelfHealingCascade {
    /// Builds a board with `chips` active sockets and `spares` spare
    /// sockets of `cells_per_chip` cells each, self-tests every socket,
    /// and wires the initial chain. Figure 3-7 with two spares is
    /// `SelfHealingCascade::new(&pattern, 5, 8, 2, policy)`.
    ///
    /// # Errors
    ///
    /// [`FaultError::Array`] if the pattern is empty, there are no
    /// sockets, or the active chain cannot hold the pattern;
    /// [`FaultError::NoSpares`] if attach-time testing condemns so many
    /// sockets that no adequate chain exists and fallback is disabled.
    pub fn new(
        pattern: &Pattern,
        chips: usize,
        cells_per_chip: usize,
        spares: usize,
        policy: RecoveryPolicy,
    ) -> Result<Self, FaultError> {
        Self::with_sink(
            pattern,
            chips,
            cells_per_chip,
            spares,
            policy,
            SinkHandle::null(),
        )
    }

    /// As [`new`](Self::new), with a trace sink that mirrors the
    /// recovery log (scrub outcomes, condemnations, remaps, commits) as
    /// workspace-wide [`TraceEvent`]s — attach-time self-tests included.
    ///
    /// # Errors
    ///
    /// As [`new`](Self::new).
    pub fn with_sink(
        pattern: &Pattern,
        chips: usize,
        cells_per_chip: usize,
        spares: usize,
        policy: RecoveryPolicy,
        sink: SinkHandle,
    ) -> Result<Self, FaultError> {
        if pattern.is_empty() {
            return Err(ArrayError::EmptyPattern.into());
        }
        if chips == 0 {
            return Err(ArrayError::NoSegments.into());
        }
        if chips * cells_per_chip < pattern.len() {
            return Err(ArrayError::ArrayTooSmall {
                cells: chips * cells_per_chip,
                pattern_len: pattern.len(),
            }
            .into());
        }
        let bist = BistProgram::standard(cells_per_chip, pattern.alphabet().bits());
        let pool: Vec<ManagedChip> = (0..chips + spares)
            .map(|_| ManagedChip::new(cells_per_chip))
            .collect();
        let mut cascade = SelfHealingCascade {
            pattern: pattern.clone(),
            cells_per_chip,
            actives: chips,
            policy,
            bist,
            condemned: vec![false; pool.len()],
            pool,
            chain: Vec::new(),
            mode: Mode::Hardware,
            sched_beat: 0,
            beat: 0,
            history: Vec::new(),
            committed: Vec::new(),
            pending: BTreeMap::new(),
            watermark: 0,
            chars_since_scrub: 0,
            log: Vec::new(),
            sink,
        };
        // Attach-time self-test of every socket: chips can be born bad.
        for socket in 0..cascade.pool.len() {
            let passed = cascade.bist_socket(socket, true);
            if !passed {
                cascade.condemn(socket);
            }
        }
        cascade.remap()?;
        Ok(cascade)
    }

    /// The pattern the board is matching.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Current operating mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The sockets currently wired into the chain, in signal order.
    pub fn chain(&self) -> &[usize] {
        &self.chain
    }

    /// Total sockets on the board (actives + spares).
    pub fn sockets(&self) -> usize {
        self.pool.len()
    }

    /// Whether a socket has been condemned.
    pub fn is_condemned(&self, socket: usize) -> bool {
        self.condemned[socket]
    }

    /// Healthy sockets not currently wired into the chain.
    pub fn spares_remaining(&self) -> usize {
        (0..self.pool.len())
            .filter(|&s| !self.condemned[s] && !self.chain.contains(&s))
            .count()
    }

    /// The global beat counter, including all scrub/test/replay
    /// overhead.
    pub fn beat(&self) -> u64 {
        self.beat
    }

    /// The recovery log.
    pub fn log(&self) -> &[RecoveryEvent] {
        &self.log
    }

    /// Replaces the trace sink (events from now on; the existing log is
    /// not replayed).
    pub fn set_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    /// Verified-final result bits (grows at each passing scrub).
    pub fn committed(&self) -> &[bool] {
        &self.committed
    }

    /// Characters written so far.
    pub fn chars_in(&self) -> u64 {
        self.history.len() as u64
    }

    /// Injects a permanent stuck-at fault into one socket's output
    /// drivers — the fault-campaign hook. The fault takes effect
    /// immediately and survives resets, like real broken silicon.
    ///
    /// # Panics
    ///
    /// Panics if `socket` is out of range.
    pub fn inject_fault(&mut self, socket: usize, fault: ChipFault) {
        self.pool[socket].fault = Some(fault);
    }

    /// Upper bound, in beats, between a fault becoming active and the
    /// corresponding [`RecoveryEvent::BistFailed`] entry: the worst
    /// case is a full scrub interval of streaming, a pipeline drain,
    /// and self-test (with all retries and backoff) of every chip ahead
    /// of the faulty one in the chain.
    pub fn detection_bound_beats(&self) -> u64 {
        let drain = 2 * (self.total_cells() + 2 * self.pattern.len() + 4) as u64;
        let per_chip = self.bist.beats_bound(self.cells_per_chip)
            * u64::from(1 + self.policy.retry.max_retries)
            + (1..=self.policy.retry.max_retries)
                .map(|a| self.policy.retry.backoff_beats(a))
                .sum::<u64>();
        2 * self.policy.scrub_interval_chars + drain + per_chip * self.chain.len().max(1) as u64
    }

    /// Streams one character. May trigger a scrub (periodic or
    /// watchdog-forced), which may in turn condemn chips, remap the
    /// chain, replay text, or degrade to software.
    ///
    /// # Errors
    ///
    /// [`FaultError::NoSpares`] at the exhaustion point when fallback
    /// is disabled, and [`FaultError::Array`] (`SegmentFaulted`) on any
    /// write after that.
    pub fn write(&mut self, sym: Symbol) -> Result<(), FaultError> {
        match self.mode {
            Mode::Failed => {
                let segment = self.condemned.iter().position(|&c| c).unwrap_or(0);
                return Err(ArrayError::SegmentFaulted { segment }.into());
            }
            Mode::Degraded => {
                self.history.push(sym);
                self.chars_since_scrub += 1;
                if self.chars_since_scrub >= self.policy.scrub_interval_chars {
                    self.chars_since_scrub = 0;
                    self.commit_degraded()?;
                }
                return Ok(());
            }
            Mode::Hardware => {}
        }
        let seq = self.history.len() as u64;
        self.history.push(sym);
        self.hw_feed(sym, seq);
        self.chars_since_scrub += 1;

        // Watchdog: results exit in bounded time on healthy hardware; a
        // persistent hole in the quarantine means the stream stalled.
        self.advance_watermark();
        let due = (self.history.len() as u64).saturating_sub(self.stall_latency_chars());
        if self.watermark < due {
            self.log.push(RecoveryEvent::StallDetected {
                missing_from: self.watermark,
                beat: self.beat,
            });
            self.sink.record(TraceEvent::HostStall {
                missing_from: self.watermark,
            });
            self.chars_since_scrub = 0;
            return self.scrub();
        }

        if self.chars_since_scrub >= self.policy.scrub_interval_chars {
            self.chars_since_scrub = 0;
            return self.scrub();
        }
        Ok(())
    }

    /// Streams a whole symbol buffer.
    ///
    /// # Errors
    ///
    /// As [`write`](Self::write); stops at the first error.
    pub fn write_all(&mut self, text: &[Symbol]) -> Result<(), FaultError> {
        for &s in text {
            self.write(s)?;
        }
        Ok(())
    }

    /// Quiesces, self-tests, and commits now, regardless of the scrub
    /// interval — the driver's explicit checkpoint.
    ///
    /// # Errors
    ///
    /// As [`write`](Self::write).
    pub fn checkpoint(&mut self) -> Result<(), FaultError> {
        self.chars_since_scrub = 0;
        match self.mode {
            Mode::Hardware => self.scrub(),
            Mode::Degraded => self.commit_degraded(),
            Mode::Failed => {
                let segment = self.condemned.iter().position(|&c| c).unwrap_or(0);
                Err(ArrayError::SegmentFaulted { segment }.into())
            }
        }
    }

    /// Ends the stream: checkpoints so every written character's result
    /// is committed, and returns the full verified result stream.
    ///
    /// # Errors
    ///
    /// As [`checkpoint`](Self::checkpoint).
    pub fn finish(&mut self) -> Result<MatchBits, FaultError> {
        // A scrub can itself condemn chips and remap; loop until the
        // commit covers the whole history or the board gives up.
        while self.committed.len() < self.history.len() {
            self.checkpoint()?;
        }
        Ok(MatchBits::new(self.committed.clone(), self.pattern.k()))
    }

    // ------------------------------------------------------------------
    // Hardware beat engine (mirrors Driver::advance_beat at chip
    // granularity, with per-chip pin faults applied at the boundaries).
    // ------------------------------------------------------------------

    fn total_cells(&self) -> usize {
        self.chain.len() * self.cells_per_chip
    }

    fn phase(&self) -> u64 {
        ((self.total_cells().max(1) - 1) % 2) as u64
    }

    /// Chars of pipeline latency the watchdog tolerates before calling
    /// a stall: full traversal plus a pattern recirculation plus the
    /// incomplete-window prefix, plus the configured slack.
    fn stall_latency_chars(&self) -> u64 {
        (self.total_cells() + 2 * self.pattern.len() + 8) as u64
            + self.pattern.k() as u64
            + self.policy.retry.stall_timeout_chars
    }

    fn advance_watermark(&mut self) {
        let k = self.pattern.k() as u64;
        let total = self.history.len() as u64;
        while self.watermark < total
            && (self.watermark < k
                || self.watermark < self.committed.len() as u64
                || self.pending.contains_key(&self.watermark))
        {
            self.watermark += 1;
        }
    }

    /// One synchronous beat of the whole chain. Reads every chip's
    /// (possibly fault-corrupted) boundary outputs, then steps every
    /// chip with its neighbours' wires — the same order as the
    /// monolithic driver, so a fault-free chain is beat-exact with
    /// `ChipCascade`.
    fn chain_beat(&mut self, text_in: Option<TxtItem<Symbol>>) -> ChainExit {
        let t = self.sched_beat;
        let psyms = self.pattern.symbols();
        let plen = psyms.len();
        let pattern_in = if t.is_multiple_of(2) {
            let idx = (t / 2) as usize % plen;
            Some(PatItem {
                payload: psyms[idx],
                lambda: idx == plen - 1,
            })
        } else {
            None
        };

        let outs: Vec<SegmentIo<BooleanMatch>> = self
            .chain
            .iter()
            .map(|&s| self.pool[s].faulty_outputs())
            .collect();
        let n = self.chain.len();
        let exit = ChainExit {
            result: outs[0].result.clone(),
        };
        for pos in 0..n {
            let socket = self.chain[pos];
            let pattern = if pos == 0 {
                pattern_in.clone()
            } else {
                outs[pos - 1].pattern.clone()
            };
            let (text, result) = if pos == n - 1 {
                (text_in.clone(), None)
            } else {
                (outs[pos + 1].text.clone(), outs[pos + 1].result.clone())
            };
            self.pool[socket].segment.step(SegmentIo {
                pattern,
                text,
                result,
            });
        }
        self.sched_beat += 1;
        self.beat += 1;
        exit
    }

    fn note_exit(&mut self, exit: ChainExit) {
        if let Some(r) = exit.result {
            if r.seq >= self.committed.len() as u64 {
                self.pending.insert(r.seq, r.value);
            }
        }
    }

    /// Feeds one character (with an explicit absolute position, so
    /// replays keep their original sequence numbers) through one bus
    /// cycle of two beats.
    fn hw_feed(&mut self, sym: Symbol, seq: u64) {
        let phase = self.phase();
        let mut item = Some(TxtItem { payload: sym, seq });
        for _ in 0..2 {
            let is_text_beat =
                self.sched_beat >= phase && (self.sched_beat - phase).is_multiple_of(2);
            let inject = if is_text_beat { item.take() } else { None };
            let exit = self.chain_beat(inject);
            self.note_exit(exit);
        }
        debug_assert!(item.is_none(), "no text slot in one bus cycle");
    }

    /// Runs the chain empty so every in-flight result exits.
    fn hw_drain(&mut self) {
        let slack = 2 * (self.total_cells() + 2 * self.pattern.len() + 4) as u64;
        for _ in 0..slack {
            let exit = self.chain_beat(None);
            self.note_exit(exit);
        }
    }

    // ------------------------------------------------------------------
    // Scrubbing, isolation, remapping, resumption.
    // ------------------------------------------------------------------

    /// Quiesce → self-test every chained chip → commit or recover.
    fn scrub(&mut self) -> Result<(), FaultError> {
        self.hw_drain();
        let chain = self.chain.clone();
        let mut any_failed = false;
        for socket in chain {
            if !self.bist_socket(socket, false) {
                self.condemn(socket);
                any_failed = true;
            }
        }
        if any_failed {
            // Quarantined results may be poisoned; void them and replay
            // through a healed chain.
            self.pending.clear();
            self.remap()
        } else {
            self.commit_all();
            self.resume();
            Ok(())
        }
    }

    /// Runs the self-test program on one socket, with the retry/backoff
    /// discipline. Logs every failure and retry. Returns the final
    /// verdict.
    fn bist_socket(&mut self, socket: usize, attach: bool) -> bool {
        let mut attempt = 0u32;
        loop {
            let outcome = self.bist.run(&mut self.pool[socket]);
            self.beat += outcome.beats;
            self.sink.record(TraceEvent::ScrubOutcome {
                socket: socket as u32,
                passed: outcome.passed,
                beats: outcome.beats,
            });
            if outcome.passed {
                if attach {
                    self.log.push(RecoveryEvent::AttachBist {
                        socket,
                        passed: true,
                        beat: self.beat,
                    });
                }
                return true;
            }
            let failure = outcome.failure.expect("failed outcome carries a failure");
            self.log.push(RecoveryEvent::BistFailed {
                socket,
                vector: failure.vector,
                port: failure.port,
                beat: self.beat,
            });
            if attempt >= self.policy.retry.max_retries {
                if attach {
                    self.log.push(RecoveryEvent::AttachBist {
                        socket,
                        passed: false,
                        beat: self.beat,
                    });
                }
                return false;
            }
            attempt += 1;
            let backoff = self.policy.retry.backoff_beats(attempt);
            self.beat += backoff;
            self.log.push(RecoveryEvent::BistRetried {
                socket,
                attempt,
                backoff_beats: backoff,
                beat: self.beat,
            });
            self.sink.record(TraceEvent::HostRetry {
                attempt,
                backoff_beats: backoff,
            });
        }
    }

    fn condemn(&mut self, socket: usize) {
        if !self.condemned[socket] {
            self.condemned[socket] = true;
            self.log.push(RecoveryEvent::Condemned {
                socket,
                beat: self.beat,
            });
            self.sink.record(TraceEvent::Condemned {
                socket: socket as u32,
            });
        }
    }

    /// Moves every quarantined result up to the end of history into the
    /// committed stream. Only called after a fully passing scrub.
    fn commit_all(&mut self) {
        let k = self.pattern.k();
        while self.committed.len() < self.history.len() {
            let seq = self.committed.len() as u64;
            let bit = if (seq as usize) < k {
                false
            } else {
                match self.pending.remove(&seq) {
                    Some(b) => b,
                    None => panic!(
                        "scrub passed but result for position {seq} never exited — \
                         unmodeled fault class"
                    ),
                }
            };
            self.committed.push(bit);
        }
        self.pending.clear();
        self.log.push(RecoveryEvent::Committed {
            upto: self.committed.len() as u64,
            beat: self.beat,
        });
        self.sink.record(TraceEvent::Committed {
            upto: self.committed.len() as u64,
        });
    }

    /// Rewires the chain around condemned sockets using the wafer
    /// harvest at chip granularity, self-testing every candidate; then
    /// resumes streaming with a replay of all uncommitted text.
    fn remap(&mut self) -> Result<(), FaultError> {
        loop {
            let harvest =
                Wafer::from_defects(vec![self.condemned.clone()]).harvest(self.policy.max_bypass);
            let stranded = harvest.stranded;
            let mut chain: Vec<usize> = harvest.chain.iter().map(|&(_, c)| c).collect();
            let needed = self.pattern.len().div_ceil(self.cells_per_chip);
            if chain.len() < needed {
                return self.exhaust();
            }
            chain.truncate(self.actives.max(needed).min(chain.len()));

            // A spare may itself be bad (faulted while idle): test
            // every socket about to carry traffic and loop if any fails.
            let mut clean = true;
            for &socket in &chain {
                if !self.bist_socket(socket, false) {
                    self.condemn(socket);
                    clean = false;
                }
            }
            if !clean {
                continue;
            }

            self.chain = chain;
            let replayed = self.resume();
            self.log.push(RecoveryEvent::Remapped {
                chain: self.chain.clone(),
                stranded,
                replayed_chars: replayed,
                beat: self.beat,
            });
            self.sink.record(TraceEvent::Remapped {
                chain_len: self.chain.len() as u32,
                replayed_chars: replayed,
            });
            return Ok(());
        }
    }

    /// Resets the chain and replays from just before the checkpoint:
    /// the last `k` committed characters re-prime the windows that span
    /// the checkpoint boundary (their duplicate results are discarded
    /// by the quarantine's seq filter), and every uncommitted character
    /// is recomputed. Returns the number of characters replayed.
    fn resume(&mut self) -> u64 {
        self.sched_beat = 0;
        let chain = self.chain.clone();
        for socket in chain {
            self.pool[socket].segment.reset();
        }
        let k = self.pattern.k();
        let start = self.committed.len().saturating_sub(k);
        for seq in start..self.history.len() {
            let sym = self.history[seq];
            self.hw_feed(sym, seq as u64);
        }
        // Stall accounting restarts from the healed chain's output.
        self.watermark = self.watermark.min(self.committed.len() as u64);
        (self.history.len() - start) as u64
    }

    /// Out of spares: degrade to software, or die.
    fn exhaust(&mut self) -> Result<(), FaultError> {
        let condemned = self.condemned.iter().filter(|&&c| c).count();
        self.chain.clear();
        if self.policy.allow_fallback {
            self.mode = Mode::Degraded;
            let algorithm = software_fallback(&self.pattern).name();
            self.log.push(RecoveryEvent::FallbackEngaged {
                algorithm,
                beat: self.beat,
            });
            self.sink.record(TraceEvent::FallbackEngaged);
            self.commit_degraded()
        } else {
            self.mode = Mode::Failed;
            Err(FaultError::NoSpares { condemned })
        }
    }

    /// Recomputes and commits the whole stream via the software
    /// fallback. The committed prefix is already golden (it survived a
    /// scrub), and the fallback is golden-checked, so extending with
    /// its bits keeps the commit invariant.
    fn commit_degraded(&mut self) -> Result<(), FaultError> {
        let matcher = software_fallback(&self.pattern);
        let bits = matcher.find(&self.history, &self.pattern)?;
        debug_assert!(bits.len() == self.history.len());
        debug_assert!(
            bits.starts_with(&self.committed),
            "software fallback disagrees with hardware-verified prefix"
        );
        self.committed = bits;
        self.pending.clear();
        self.log.push(RecoveryEvent::Committed {
            upto: self.committed.len() as u64,
            beat: self.beat,
        });
        self.sink.record(TraceEvent::Committed {
            upto: self.committed.len() as u64,
        });
        Ok(())
    }
}

/// The fault-tolerant flavour of [`HostBus`](crate::host::HostBus): the
/// same byte-level device-driver protocol, backed by a
/// [`SelfHealingCascade`] instead of a bare array. The one visible
/// difference is the delivery contract — match events surface only once
/// their window has been *verified* by a passing scrub, so event
/// latency is bounded by the scrub interval rather than the array
/// pipeline. In exchange, every delivered event is final: no later
/// fault can retract it.
#[derive(Debug, Clone)]
pub struct ResilientHostBus {
    chips: usize,
    cells_per_chip: usize,
    spares: usize,
    policy: RecoveryPolicy,
    device: Option<ResilientDevice>,
    /// Trace sink handed to each cascade this bus builds.
    sink: SinkHandle,
}

#[derive(Debug, Clone)]
struct ResilientDevice {
    cascade: SelfHealingCascade,
    /// Next committed position to scan for deliverable events.
    delivered: usize,
    events: VecDeque<MatchEvent>,
}

impl ResilientHostBus {
    /// Installs a board with `chips` active sockets plus `spares`
    /// spares, `cells_per_chip` cells each.
    ///
    /// # Panics
    ///
    /// Panics if `chips` or `cells_per_chip` is zero.
    pub fn new(chips: usize, cells_per_chip: usize, spares: usize, policy: RecoveryPolicy) -> Self {
        assert!(chips > 0, "a board needs active sockets");
        assert!(cells_per_chip > 0, "a chip needs cells");
        ResilientHostBus {
            chips,
            cells_per_chip,
            spares,
            policy,
            device: None,
            sink: SinkHandle::null(),
        }
    }

    /// Installs a trace sink: future cascades (and the current one, if
    /// a pattern is loaded) emit stall/scrub/recovery events into it.
    pub fn set_sink(&mut self, sink: SinkHandle) {
        if let Some(dev) = &mut self.device {
            dev.cascade.set_sink(sink.clone());
        }
        self.sink = sink;
    }

    /// Device state: `Idle` before a pattern is loaded, `Streaming` on
    /// hardware, `Degraded` once the fallback (or a hard failure) has
    /// taken the array out of service.
    pub fn state(&self) -> DeviceState {
        match &self.device {
            None => DeviceState::Idle,
            Some(d) => match d.cascade.mode() {
                Mode::Hardware => DeviceState::Streaming,
                Mode::Degraded | Mode::Failed => DeviceState::Degraded,
            },
        }
    }

    /// The underlying cascade, for fault injection and telemetry.
    pub fn cascade(&self) -> Option<&SelfHealingCascade> {
        self.device.as_ref().map(|d| &d.cascade)
    }

    /// Mutable access to the cascade (the fault-campaign hook).
    pub fn cascade_mut(&mut self) -> Option<&mut SelfHealingCascade> {
        self.device.as_mut().map(|d| &mut d.cascade)
    }

    /// Loads (or replaces) the pattern: builds and attach-tests the
    /// whole board, resets the stream and clears pending events.
    ///
    /// # Errors
    ///
    /// Any [`FaultError`] from board bring-up.
    pub fn load_pattern(&mut self, pattern: &Pattern) -> Result<(), FaultError> {
        let cascade = SelfHealingCascade::with_sink(
            pattern,
            self.chips,
            self.cells_per_chip,
            self.spares,
            self.policy,
            self.sink.clone(),
        )?;
        self.device = Some(ResilientDevice {
            cascade,
            delivered: 0,
            events: VecDeque::new(),
        });
        Ok(())
    }

    /// Streams one text byte. Scrubbing, recovery and fallback all
    /// happen inside this call when they are due.
    ///
    /// # Errors
    ///
    /// [`FaultError::Host`] for protocol misuse, plus anything the
    /// recovery machinery reports.
    pub fn write_byte(&mut self, byte: u8) -> Result<(), FaultError> {
        let dev = self
            .device
            .as_mut()
            .ok_or(FaultError::Host(HostError::NoPattern))?;
        if !dev.cascade.pattern().alphabet().contains(byte) {
            return Err(FaultError::Host(HostError::BadByte(byte)));
        }
        dev.cascade.write(Symbol::new(byte))?;
        Self::harvest_events(dev);
        Ok(())
    }

    /// Streams a whole buffer.
    ///
    /// # Errors
    ///
    /// As [`write_byte`](Self::write_byte); stops at the first error.
    pub fn write(&mut self, bytes: &[u8]) -> Result<(), FaultError> {
        for &b in bytes {
            self.write_byte(b)?;
        }
        Ok(())
    }

    /// Flushes and checkpoints so every match for bytes already written
    /// becomes a delivered, final event.
    ///
    /// # Errors
    ///
    /// [`FaultError::Host`] (`NoPattern`) if no pattern is loaded, plus
    /// anything the recovery machinery reports.
    pub fn flush(&mut self) -> Result<(), FaultError> {
        let dev = self
            .device
            .as_mut()
            .ok_or(FaultError::Host(HostError::NoPattern))?;
        while dev.cascade.committed().len() < dev.cascade.chars_in() as usize {
            dev.cascade.checkpoint()?;
        }
        Self::harvest_events(dev);
        Ok(())
    }

    fn harvest_events(dev: &mut ResilientDevice) {
        let k = dev.cascade.pattern().k();
        let committed = dev.cascade.committed();
        for (i, &bit) in committed.iter().enumerate().skip(dev.delivered) {
            if bit && i >= k {
                dev.events.push_back(MatchEvent {
                    end: i as u64,
                    start: (i - k) as u64,
                });
            }
        }
        dev.delivered = committed.len();
    }

    /// The interrupt line: asserted while verified events are queued.
    pub fn irq_pending(&self) -> bool {
        self.device.as_ref().is_some_and(|d| !d.events.is_empty())
    }

    /// Pops the oldest verified match event.
    pub fn read_event(&mut self) -> Option<MatchEvent> {
        self.device.as_mut()?.events.pop_front()
    }

    /// Bytes accepted since the pattern was loaded.
    pub fn bytes_streamed(&self) -> u64 {
        self.device.as_ref().map_or(0, |d| d.cascade.chars_in())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_systolic::spec::match_spec;
    use pm_systolic::symbol::text_from_letters;

    fn quick_policy() -> RecoveryPolicy {
        RecoveryPolicy {
            scrub_interval_chars: 16,
            max_bypass: 1,
            allow_fallback: true,
            retry: RetryPolicy {
                stall_timeout_chars: 8,
                max_retries: 1,
                backoff_base_beats: 4,
                backoff_factor: 2,
                ..RetryPolicy::default()
            },
        }
    }

    fn cascade(pattern: &str, chips: usize, cells: usize, spares: usize) -> SelfHealingCascade {
        let p = Pattern::parse(pattern).unwrap();
        SelfHealingCascade::new(&p, chips, cells, spares, quick_policy()).unwrap()
    }

    fn golden(pattern: &str, text: &str) -> Vec<bool> {
        let p = Pattern::parse(pattern).unwrap();
        let t = text_from_letters(text).unwrap();
        match_spec(&t, &p)
    }

    #[test]
    fn fault_free_board_is_golden() {
        let mut board = cascade("ABCA", 3, 2, 1);
        let text = text_from_letters(&"ABCABCA".repeat(10)).unwrap();
        board.write_all(&text).unwrap();
        let bits = board.finish().unwrap();
        assert_eq!(bits.bits(), golden("ABCA", &"ABCABCA".repeat(10)));
        assert_eq!(board.mode(), Mode::Hardware);
        assert_eq!(board.spares_remaining(), 1);
    }

    #[test]
    fn attach_bist_runs_on_every_socket() {
        let board = cascade("AB", 2, 2, 2);
        let attaches = board
            .log()
            .iter()
            .filter(|e| matches!(e, RecoveryEvent::AttachBist { passed: true, .. }))
            .count();
        assert_eq!(attaches, 4);
    }

    #[test]
    fn every_fault_kind_is_detected_and_healed() {
        let text_src = "ABCABCAACBACBBCA".repeat(8);
        for fault in [
            ChipFault::ResultStuck(true),
            ChipFault::ResultStuck(false),
            ChipFault::ResultDead,
            ChipFault::TextStuck(0),
            ChipFault::PatternStuck(1),
        ] {
            let mut board = cascade("ABCA", 3, 2, 2);
            let text = text_from_letters(&text_src).unwrap();
            let mid = text.len() / 2;
            board.write_all(&text[..mid]).unwrap();
            board.inject_fault(1, fault);
            board.write_all(&text[mid..]).unwrap();
            let bits = board.finish().unwrap();
            assert_eq!(
                bits.bits(),
                golden("ABCA", &text_src),
                "fault {fault} corrupted the committed stream"
            );
            assert_eq!(board.mode(), Mode::Hardware, "fault {fault}");
            assert!(board.is_condemned(1), "fault {fault} not condemned");
            assert!(
                board
                    .log()
                    .iter()
                    .any(|e| matches!(e, RecoveryEvent::Remapped { .. })),
                "fault {fault} never remapped"
            );
        }
    }

    #[test]
    fn detection_latency_is_bounded() {
        let mut board = cascade("ABCA", 3, 2, 2);
        let text = text_from_letters(&"ABCA".repeat(20)).unwrap();
        board.write_all(&text[..10]).unwrap();
        let injected_at = board.beat();
        board.inject_fault(0, ChipFault::ResultStuck(true));
        let bound = board.detection_bound_beats();
        board.write_all(&text[10..]).unwrap();
        board.finish().unwrap();
        let detected_at = board
            .log()
            .iter()
            .find_map(|e| match e {
                RecoveryEvent::BistFailed { beat, .. } => Some(*beat),
                _ => None,
            })
            .expect("fault must be detected");
        assert!(
            detected_at - injected_at <= bound,
            "latency {} > bound {bound}",
            detected_at - injected_at
        );
    }

    #[test]
    fn retries_backoff_then_condemn() {
        let mut board = cascade("AB", 2, 2, 1);
        board.inject_fault(0, ChipFault::ResultStuck(true));
        let text = text_from_letters(&"AB".repeat(20)).unwrap();
        board.write_all(&text).unwrap();
        board.finish().unwrap();
        let retries: Vec<_> = board
            .log()
            .iter()
            .filter_map(|e| match e {
                RecoveryEvent::BistRetried {
                    socket: 0,
                    backoff_beats,
                    ..
                } => Some(*backoff_beats),
                _ => None,
            })
            .collect();
        assert_eq!(retries, vec![4], "one retry at base backoff");
        assert!(board.is_condemned(0));
    }

    #[test]
    fn spare_exhaustion_degrades_to_golden_software() {
        let mut board = cascade("ABA", 2, 2, 1);
        let text_src = "ABAABABBAABA".repeat(6);
        let text = text_from_letters(&text_src).unwrap();
        board.write_all(&text[..8]).unwrap();
        // Kill chips faster than spares can cover.
        board.inject_fault(0, ChipFault::ResultStuck(true));
        board.inject_fault(1, ChipFault::ResultStuck(false));
        board.inject_fault(2, ChipFault::ResultDead);
        board.write_all(&text[8..]).unwrap();
        let bits = board.finish().unwrap();
        assert_eq!(board.mode(), Mode::Degraded);
        assert_eq!(bits.bits(), golden("ABA", &text_src));
        assert!(board.log().iter().any(|e| matches!(
            e,
            RecoveryEvent::FallbackEngaged {
                algorithm: "kmp",
                ..
            }
        )));
    }

    #[test]
    fn wildcard_pattern_falls_back_to_naive() {
        let mut board = cascade("AXA", 2, 2, 0);
        let text_src = "ABAACAADA".repeat(4);
        let text = text_from_letters(&text_src).unwrap();
        board.write_all(&text[..4]).unwrap();
        board.inject_fault(0, ChipFault::TextStuck(3));
        board.write_all(&text[4..]).unwrap();
        let bits = board.finish().unwrap();
        assert_eq!(board.mode(), Mode::Degraded);
        assert_eq!(bits.bits(), golden("AXA", &text_src));
        assert!(board.log().iter().any(|e| matches!(
            e,
            RecoveryEvent::FallbackEngaged {
                algorithm: "naive",
                ..
            }
        )));
    }

    #[test]
    fn fallback_disabled_reports_no_spares_then_poisons() {
        let p = Pattern::parse("AB").unwrap();
        let policy = RecoveryPolicy {
            allow_fallback: false,
            ..quick_policy()
        };
        let mut board = SelfHealingCascade::new(&p, 2, 2, 0, policy).unwrap();
        board.inject_fault(0, ChipFault::ResultDead);
        board.inject_fault(1, ChipFault::ResultDead);
        let text = text_from_letters(&"AB".repeat(20)).unwrap();
        let err = board.write_all(&text).unwrap_err();
        assert!(
            matches!(err, FaultError::NoSpares { condemned: 2 }),
            "{err}"
        );
        assert_eq!(board.mode(), Mode::Failed);
        let err2 = board.write(Symbol::new(0)).unwrap_err();
        assert!(
            matches!(err2, FaultError::Array(ArrayError::SegmentFaulted { .. })),
            "{err2}"
        );
    }

    #[test]
    fn stall_watchdog_forces_early_scrub() {
        // Scrub interval far beyond the test length: only the watchdog
        // can catch the dead result port.
        let p = Pattern::parse("AB").unwrap();
        let policy = RecoveryPolicy {
            scrub_interval_chars: 100_000,
            ..quick_policy()
        };
        let mut board = SelfHealingCascade::new(&p, 2, 2, 1, policy).unwrap();
        let text_src = "AB".repeat(60);
        let text = text_from_letters(&text_src).unwrap();
        board.write_all(&text[..4]).unwrap();
        board.inject_fault(0, ChipFault::ResultDead);
        board.write_all(&text[4..]).unwrap();
        assert!(
            board
                .log()
                .iter()
                .any(|e| matches!(e, RecoveryEvent::StallDetected { .. })),
            "watchdog never fired: {:?}",
            board.log()
        );
        let bits = board.finish().unwrap();
        assert_eq!(bits.bits(), golden("AB", &text_src));
        assert_eq!(board.mode(), Mode::Hardware);
    }

    #[test]
    fn committed_results_are_never_retracted() {
        let mut board = cascade("ABCA", 3, 2, 2);
        let text = text_from_letters(&"ABCABCA".repeat(10)).unwrap();
        board.write_all(&text[..30]).unwrap();
        board.checkpoint().unwrap();
        let snapshot = board.committed().to_vec();
        board.inject_fault(1, ChipFault::ResultStuck(true));
        board.write_all(&text[30..]).unwrap();
        board.finish().unwrap();
        assert!(board.committed().starts_with(&snapshot));
    }

    #[test]
    fn construction_errors_use_the_taxonomy() {
        let p = Pattern::parse("ABCAB").unwrap();
        let err = SelfHealingCascade::new(&p, 2, 2, 0, quick_policy()).unwrap_err();
        assert!(matches!(
            err,
            FaultError::Array(ArrayError::ArrayTooSmall { cells: 4, .. })
        ));
        assert!(std::error::Error::source(&err).is_some());
        // From conversions across the taxonomy.
        let _: FaultError = HostError::NoPattern.into();
        let _: FaultError = MatchError::WildcardsUnsupported { algorithm: "kmp" }.into();
        let _: FaultError = SimError::Oscillation { iterations: 3 }.into();
        let display = FaultError::NoSpares { condemned: 3 }.to_string();
        assert!(display.contains("3"));
    }

    #[test]
    fn resilient_host_bus_delivers_verified_events() {
        let mut bus = ResilientHostBus::new(3, 2, 1, quick_policy());
        assert_eq!(bus.state(), DeviceState::Idle);
        assert!(matches!(
            bus.write_byte(0),
            Err(FaultError::Host(HostError::NoPattern))
        ));
        let p = Pattern::parse("ABA").unwrap();
        bus.load_pattern(&p).unwrap();
        assert_eq!(bus.state(), DeviceState::Streaming);
        assert!(matches!(
            bus.write_byte(9),
            Err(FaultError::Host(HostError::BadByte(9)))
        ));
        let text_src = "ABAABABA".repeat(4);
        for ch in text_from_letters(&text_src).unwrap() {
            bus.write_byte(ch.value()).unwrap();
        }
        bus.flush().unwrap();
        let mut ends = Vec::new();
        while let Some(e) = bus.read_event() {
            assert_eq!(e.end - e.start, 2);
            ends.push(e.end as usize);
        }
        let expected: Vec<usize> = golden("ABA", &text_src)
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(ends, expected);
        assert_eq!(bus.bytes_streamed(), text_src.len() as u64);
    }

    #[test]
    fn resilient_host_bus_survives_mid_stream_fault() {
        let mut bus = ResilientHostBus::new(3, 2, 2, quick_policy());
        let p = Pattern::parse("ABA").unwrap();
        bus.load_pattern(&p).unwrap();
        let text_src = "ABAAB".repeat(10);
        let bytes: Vec<u8> = text_from_letters(&text_src)
            .unwrap()
            .iter()
            .map(|s| s.value())
            .collect();
        bus.write(&bytes[..10]).unwrap();
        bus.cascade_mut()
            .unwrap()
            .inject_fault(2, ChipFault::PatternStuck(0));
        bus.write(&bytes[10..]).unwrap();
        bus.flush().unwrap();
        assert_eq!(bus.state(), DeviceState::Streaming);
        let mut ends = Vec::new();
        while let Some(e) = bus.read_event() {
            ends.push(e.end as usize);
        }
        let expected: Vec<usize> = golden("ABA", &text_src)
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(ends, expected);
    }

    #[test]
    fn sink_mirrors_the_recovery_log() {
        use crate::telemetry::MetricsRegistry;
        use std::sync::Arc;
        let metrics = Arc::new(MetricsRegistry::new());
        let mut bus = ResilientHostBus::new(3, 2, 2, quick_policy());
        bus.set_sink(SinkHandle::new(metrics.clone()));
        let p = Pattern::parse("ABA").unwrap();
        bus.load_pattern(&p).unwrap();
        // Attach-time BIST of all 5 sockets (plus the initial remap's
        // re-test of the 3 chained ones) reached the sink.
        assert!(metrics.snapshot().scrubs_passed >= 5);
        let text_src = "ABAAB".repeat(10);
        let bytes: Vec<u8> = text_from_letters(&text_src)
            .unwrap()
            .iter()
            .map(|s| s.value())
            .collect();
        bus.write(&bytes[..10]).unwrap();
        bus.cascade_mut()
            .unwrap()
            .inject_fault(2, ChipFault::ResultDead);
        bus.write(&bytes[10..]).unwrap();
        bus.flush().unwrap();
        let snap = metrics.snapshot();
        let cascade = bus.cascade().unwrap();
        let log = cascade.log();
        let log_count = |f: fn(&RecoveryEvent) -> bool| log.iter().filter(|e| f(e)).count() as u64;
        assert_eq!(
            snap.condemned,
            log_count(|e| matches!(e, RecoveryEvent::Condemned { .. }))
        );
        assert_eq!(
            snap.remaps,
            log_count(|e| matches!(e, RecoveryEvent::Remapped { .. }))
        );
        assert_eq!(
            snap.commits,
            log_count(|e| matches!(e, RecoveryEvent::Committed { .. }))
        );
        assert_eq!(
            snap.host_stalls,
            log_count(|e| matches!(e, RecoveryEvent::StallDetected { .. }))
        );
        assert_eq!(
            snap.host_retries,
            log_count(|e| matches!(e, RecoveryEvent::BistRetried { .. }))
        );
        assert!(snap.condemned >= 1, "the dead chip must be condemned");
        assert!(snap.scrub_beats > 0);
    }

    #[test]
    fn fault_display_is_informative() {
        assert!(ChipFault::ResultStuck(true).to_string().contains("stuck"));
        assert!(ChipFault::ResultDead.to_string().contains("dead"));
        assert!(ChipFault::TextStuck(2).to_string().contains("2"));
        assert!(ChipFault::PatternStuck(1).to_string().contains("1"));
    }
}
