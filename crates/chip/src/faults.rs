//! The unified fault taxonomy and the seeded chaos harness.
//!
//! §4 of the paper argues that a special-purpose array is only a
//! product if the production program *assumes* defective cells:
//! detection and redundancy are designed in, not bolted on. The
//! [`recovery`](crate::recovery) module reproduces that discipline for
//! the single-stream cascade (BIST scrub → condemn → spare-remap); this
//! module extends it to the superplane throughput scheduler, in two
//! parts:
//!
//! * **One fault vocabulary.** Every layer previously named its faults
//!   alone — [`ChipFault`] for stuck output drivers,
//!   [`HostError`] for protocol-visible sickness, and nothing at all
//!   for the scheduler. [`Fault`] unifies them (plus the new
//!   scheduler-level [`PlaneFault`] kinds) behind one enum with one
//!   stable [`label`](Fault::label) per kind, so telemetry counters and
//!   log lines agree on names across layers.
//!
//! * **A deterministic chaos harness.** [`FaultPlan`] is a seeded
//!   description of which scheduler workers are defective, what kind of
//!   sticky datapath fault each carries, and when it first bites.
//!   Everything is derived from the seed with [`XorShift64`] (the
//!   workspace is offline and vendors no RNG crate), so a failing CI
//!   seed reproduces exactly on a laptop. The plan follows §4's
//!   *single-stuck-at* philosophy: faults are **sticky** — once a
//!   worker's fault activates it corrupts every batch that worker
//!   touches from then on, which is precisely what makes the
//!   scheduler's exit known-answer test (see
//!   [`throughput`](crate::throughput)) a sound commit gate.
//!
//! ```
//! use pm_chip::faults::{Fault, FaultPlan, PlaneFault};
//!
//! let plan = FaultPlan::new(42).with_worker_fault_permille(1000);
//! let sticky = plan.worker_fault(0).expect("permille 1000 afflicts everyone");
//! assert_eq!(plan.worker_fault(0), Some(sticky)); // fully deterministic
//! let fault: Fault = sticky.kind.into();
//! assert!(!fault.label().is_empty());
//! ```

use crate::host::HostError;
use crate::recovery::ChipFault;
use std::fmt;

/// A splitmix64-style bit finaliser: spreads a small integer (worker
/// index, batch number) over the whole word so derived seeds are
/// independent streams.
pub const fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny deterministic generator (xorshift64\*): good enough for fault
/// placement and jitter, zero dependencies, `Copy`-cheap. Never yields
/// the all-zero state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator; a zero seed is remapped to a fixed
    /// constant (the xorshift state must never be zero).
    pub const fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A value in `0..=max` (inclusive), without panicking at the
    /// numeric limits.
    pub fn bounded(&mut self, max: u64) -> u64 {
        if max == u64::MAX {
            self.next_u64()
        } else {
            self.next_u64() % (max + 1)
        }
    }

    /// `true` with probability `permille / 1000` (values ≥ 1000 are
    /// always true).
    pub fn chance(&mut self, permille: u32) -> bool {
        if permille >= 1000 {
            return true;
        }
        self.next_u64() % 1000 < u64::from(permille)
    }
}

/// A sticky datapath fault afflicting one scheduler worker — the
/// scheduler-level analogue of §4's single-stuck-at model. The first
/// three corrupt result bits; the last two attack the worker itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaneFault {
    /// One result bit of one lane flips per batch (a lane upset in the
    /// `Superplane<W>` result planes).
    LaneUpset,
    /// A comparator column is stuck: every result bit of one lane reads
    /// `level` regardless of the text.
    StuckComparator {
        /// The level the comparator is stuck at.
        level: bool,
    },
    /// The worker's compiled-pattern cache is poisoned: batches served
    /// from a cache *hit* use corrupted control planes and come back
    /// wrong; fresh compiles are clean.
    CachePoison,
    /// The worker dawdles: each batch takes an extra fixed wall-clock
    /// stall ([`FaultPlan::stall_millis`]), tripping the scheduler
    /// watchdog. Results are not corrupted.
    WorkerStall,
    /// The worker panics mid-batch.
    WorkerPanic,
}

impl PlaneFault {
    /// Stable snake_case label, shared by telemetry and logs.
    pub const fn label(self) -> &'static str {
        match self {
            PlaneFault::LaneUpset => "lane_upset",
            PlaneFault::StuckComparator { .. } => "stuck_comparator",
            PlaneFault::CachePoison => "cache_poison",
            PlaneFault::WorkerStall => "worker_stall",
            PlaneFault::WorkerPanic => "worker_panic",
        }
    }

    /// Whether this fault corrupts result data (as opposed to timing
    /// or liveness).
    pub const fn corrupts_data(self) -> bool {
        matches!(
            self,
            PlaneFault::LaneUpset | PlaneFault::StuckComparator { .. } | PlaneFault::CachePoison
        )
    }
}

impl fmt::Display for PlaneFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaneFault::LaneUpset => write!(f, "lane upset in the result planes"),
            PlaneFault::StuckComparator { level } => {
                write!(f, "comparator column stuck-at-{level}")
            }
            PlaneFault::CachePoison => write!(f, "compiled-pattern cache poisoned"),
            PlaneFault::WorkerStall => write!(f, "worker stalls past the watchdog"),
            PlaneFault::WorkerPanic => write!(f, "worker panics mid-batch"),
        }
    }
}

/// Every fault the workspace can name, in one enum: chip-level stuck
/// pins ([`ChipFault`]), host-protocol sickness ([`HostError`]) and
/// scheduler-level plane faults ([`PlaneFault`]). `From` conversions
/// exist from all three, so any layer's fault can be logged and
/// counted under one [`label`](Fault::label) vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// A stuck-at fault on a cascade chip's output drivers.
    Chip(ChipFault),
    /// A host-protocol error (bad byte, no pattern, stall).
    Host(HostError),
    /// A scheduler-worker datapath fault.
    Plane(PlaneFault),
}

impl Fault {
    /// Stable snake_case label for telemetry counters and log lines.
    /// Labels are unique per fault kind across all three layers.
    pub const fn label(&self) -> &'static str {
        match self {
            Fault::Chip(ChipFault::ResultStuck(_)) => "result_stuck",
            Fault::Chip(ChipFault::ResultDead) => "result_dead",
            Fault::Chip(ChipFault::TextStuck(_)) => "text_stuck",
            Fault::Chip(ChipFault::PatternStuck(_)) => "pattern_stuck",
            Fault::Host(HostError::NoPattern) => "host_no_pattern",
            Fault::Host(HostError::BadByte(_)) => "host_bad_byte",
            Fault::Host(HostError::BadPattern(_)) => "host_bad_pattern",
            Fault::Host(HostError::Stalled { .. }) => "host_stalled",
            Fault::Plane(kind) => kind.label(),
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Chip(e) => write!(f, "chip fault: {e}"),
            Fault::Host(e) => write!(f, "host fault: {e}"),
            Fault::Plane(e) => write!(f, "plane fault: {e}"),
        }
    }
}

impl std::error::Error for Fault {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Fault::Host(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChipFault> for Fault {
    fn from(f: ChipFault) -> Self {
        Fault::Chip(f)
    }
}

impl From<HostError> for Fault {
    fn from(f: HostError) -> Self {
        Fault::Host(f)
    }
}

impl From<PlaneFault> for Fault {
    fn from(f: PlaneFault) -> Self {
        Fault::Plane(f)
    }
}

/// One worker's sticky affliction, as drawn from a [`FaultPlan`]:
/// which fault, from which of the worker's batches onward, and the
/// per-worker salt that steers where the corruption lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StickyFault {
    /// The fault kind.
    pub kind: PlaneFault,
    /// The fault activates once the worker has started this many
    /// batches (0 = defective from the first batch).
    pub onset: u64,
    /// Seed material for the corruption site (mixed with the batch
    /// number, so different batches corrupt different lanes/bits).
    pub salt: u64,
}

/// A deterministic, seeded chaos campaign over the throughput
/// scheduler: which workers are born defective, with what sticky
/// [`PlaneFault`], activating after how many batches — plus whether
/// the recovery ladder's hardware rungs themselves fail (modelling
/// damage wider than a single worker, which is what forces the
/// W8 → W4 → W1 → software descent end to end).
///
/// Everything is a pure function of `(seed, index)`: two engines
/// handed equal plans inject byte-identical faults, and a CI seed
/// matrix entry reproduces anywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    worker_fault_permille: u32,
    max_onset_batches: u64,
    rung_fail_permille: u32,
    stall_millis: u64,
    forced_kind: Option<PlaneFault>,
}

impl FaultPlan {
    /// A plan with moderate default rates: each worker is defective
    /// with probability 0.25, onset within its first 4 batches, each
    /// hardware recovery rung fails with probability 0.1, and a stall
    /// adds 50 ms.
    pub const fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            worker_fault_permille: 250,
            max_onset_batches: 4,
            rung_fail_permille: 100,
            stall_millis: 50,
            forced_kind: None,
        }
    }

    /// The campaign seed.
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Probability (per mille) that a worker is born defective.
    pub const fn with_worker_fault_permille(mut self, permille: u32) -> Self {
        self.worker_fault_permille = permille;
        self
    }

    /// Latest onset, counted in batches the worker has started.
    pub const fn with_max_onset_batches(mut self, batches: u64) -> Self {
        self.max_onset_batches = batches;
        self
    }

    /// Probability (per mille) that each hardware recovery rung fails
    /// for a given voided batch.
    pub const fn with_rung_fail_permille(mut self, permille: u32) -> Self {
        self.rung_fail_permille = permille;
        self
    }

    /// Wall-clock milliseconds a [`PlaneFault::WorkerStall`] adds per
    /// batch.
    pub const fn with_stall_millis(mut self, millis: u64) -> Self {
        self.stall_millis = millis;
        self
    }

    /// Forces every defective worker to carry this exact kind instead
    /// of a seed-drawn one (for targeted tests: e.g. all-panic or
    /// all-stall campaigns).
    pub const fn with_forced_kind(mut self, kind: PlaneFault) -> Self {
        self.forced_kind = Some(kind);
        self
    }

    /// The stall length for [`PlaneFault::WorkerStall`].
    pub const fn stall_millis(&self) -> u64 {
        self.stall_millis
    }

    /// The sticky fault afflicting `worker`, if any. Deterministic in
    /// `(seed, worker)`.
    pub fn worker_fault(&self, worker: usize) -> Option<StickyFault> {
        let mut rng = XorShift64::new(self.seed ^ mix(worker as u64 + 1));
        if !rng.chance(self.worker_fault_permille) {
            return None;
        }
        let kind = match self.forced_kind {
            Some(kind) => kind,
            None => match rng.next_u64() % 5 {
                0 => PlaneFault::LaneUpset,
                1 => PlaneFault::StuckComparator {
                    level: rng.next_u64() & 1 == 1,
                },
                2 => PlaneFault::CachePoison,
                3 => PlaneFault::WorkerStall,
                _ => PlaneFault::WorkerPanic,
            },
        };
        let onset = rng.bounded(self.max_onset_batches);
        let salt = rng.next_u64() | 1;
        Some(StickyFault { kind, onset, salt })
    }

    /// Whether hardware recovery rung `rung` (0-based from the widest)
    /// also fails for voided batch `batch`. Deterministic in
    /// `(seed, batch, rung)`.
    pub fn rung_fails(&self, batch: usize, rung: usize) -> bool {
        let key = mix((batch as u64) << 8 | rung as u64) ^ 0x5CA1_AB1E;
        XorShift64::new(self.seed ^ key).chance(self.rung_fail_permille)
    }
}

/// Applies a sticky fault's datapath corruption to one batch's result
/// bits (one `Vec<bool>` per lane). `salt` should vary per batch (mix
/// the worker salt with the batch number); `cache_hit` reports whether
/// the batch's pattern lookup was served from cache, which is what
/// [`PlaneFault::CachePoison`] keys on. Returns `true` if any bit
/// changed — [`PlaneFault::WorkerStall`] / [`PlaneFault::WorkerPanic`]
/// never corrupt data and always return `false`.
pub fn corrupt_bits(kind: PlaneFault, salt: u64, lanes: &mut [Vec<bool>], cache_hit: bool) -> bool {
    match kind {
        PlaneFault::LaneUpset => flip_one_bit(salt, lanes),
        PlaneFault::CachePoison => cache_hit && flip_one_bit(salt, lanes),
        PlaneFault::StuckComparator { level } => {
            if lanes.is_empty() {
                return false;
            }
            let lane = (salt % lanes.len() as u64) as usize;
            let mut changed = false;
            for bit in &mut lanes[lane] {
                changed |= *bit != level;
                *bit = level;
            }
            changed
        }
        PlaneFault::WorkerStall | PlaneFault::WorkerPanic => false,
    }
}

/// Flips one result bit in the first non-empty lane at or after the
/// salt-chosen one. Returns `false` only when every lane is empty.
fn flip_one_bit(salt: u64, lanes: &mut [Vec<bool>]) -> bool {
    if lanes.is_empty() {
        return false;
    }
    let start = (salt % lanes.len() as u64) as usize;
    for off in 0..lanes.len() {
        let lane = &mut lanes[(start + off) % lanes.len()];
        if !lane.is_empty() {
            let pos = ((salt >> 16) % lane.len() as u64) as usize;
            lane[pos] = !lane[pos];
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_never_zero() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
        }
        // The zero seed is remapped, not propagated.
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0);
        // Bounded draws respect the bound, including the numeric limit.
        let mut r = XorShift64::new(3);
        for _ in 0..50 {
            assert!(r.bounded(9) <= 9);
        }
        let _ = r.bounded(u64::MAX); // must not panic
        assert_eq!(r.bounded(0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = XorShift64::new(11);
        assert!(rng.chance(1000));
        assert!(rng.chance(2000));
        for _ in 0..50 {
            assert!(!rng.chance(0));
        }
    }

    #[test]
    fn plan_is_deterministic_per_worker() {
        let plan = FaultPlan::new(99).with_worker_fault_permille(600);
        for w in 0..16 {
            assert_eq!(plan.worker_fault(w), plan.worker_fault(w));
        }
        // And across clones.
        let twin = plan.clone();
        assert_eq!(plan.worker_fault(3), twin.worker_fault(3));
        // Some workers are hit and some spared at 60 %.
        let hit = (0..64).filter(|&w| plan.worker_fault(w).is_some()).count();
        assert!(hit > 0 && hit < 64, "hit {hit} of 64");
    }

    #[test]
    fn forced_kind_and_full_rate_afflict_everyone() {
        let plan = FaultPlan::new(1)
            .with_worker_fault_permille(1000)
            .with_forced_kind(PlaneFault::WorkerPanic)
            .with_max_onset_batches(0);
        for w in 0..8 {
            let f = plan.worker_fault(w).expect("permille 1000");
            assert_eq!(f.kind, PlaneFault::WorkerPanic);
            assert_eq!(f.onset, 0);
        }
    }

    #[test]
    fn rung_failures_are_deterministic_and_rate_bound() {
        let never = FaultPlan::new(5).with_rung_fail_permille(0);
        let always = FaultPlan::new(5).with_rung_fail_permille(1000);
        for b in 0..20 {
            for r in 0..3 {
                assert!(!never.rung_fails(b, r));
                assert!(always.rung_fails(b, r));
            }
        }
        let some = FaultPlan::new(5).with_rung_fail_permille(500);
        assert_eq!(some.rung_fails(7, 1), some.rung_fails(7, 1));
    }

    #[test]
    fn labels_are_stable_and_unique() {
        let faults: Vec<Fault> = vec![
            ChipFault::ResultStuck(true).into(),
            ChipFault::ResultDead.into(),
            ChipFault::TextStuck(1).into(),
            ChipFault::PatternStuck(2).into(),
            HostError::NoPattern.into(),
            HostError::BadByte(9).into(),
            HostError::Stalled { beats: 3 }.into(),
            PlaneFault::LaneUpset.into(),
            PlaneFault::StuckComparator { level: false }.into(),
            PlaneFault::CachePoison.into(),
            PlaneFault::WorkerStall.into(),
            PlaneFault::WorkerPanic.into(),
        ];
        let labels: Vec<&str> = faults.iter().map(|f| f.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "labels must be unique");
        for (fault, label) in faults.iter().zip(&labels) {
            assert!(!label.is_empty());
            assert!(!fault.to_string().is_empty());
            assert!(
                label.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{label} must be snake_case"
            );
        }
    }

    #[test]
    fn host_fault_chains_its_source() {
        use std::error::Error as _;
        let f: Fault = HostError::Stalled { beats: 4 }.into();
        assert!(f.source().is_some());
        let c: Fault = ChipFault::ResultDead.into();
        assert!(c.source().is_none());
    }

    #[test]
    fn corruption_changes_exactly_what_it_claims() {
        let mk = || vec![vec![true, false, true], vec![false, false, false]];
        // LaneUpset flips exactly one bit.
        let mut lanes = mk();
        assert!(corrupt_bits(
            PlaneFault::LaneUpset,
            12345,
            &mut lanes,
            false
        ));
        let diff: usize = lanes
            .iter()
            .flatten()
            .zip(mk().iter().flatten())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diff, 1);
        // Poison only bites on cache hits.
        let mut lanes = mk();
        assert!(!corrupt_bits(PlaneFault::CachePoison, 7, &mut lanes, false));
        assert_eq!(lanes, mk());
        assert!(corrupt_bits(PlaneFault::CachePoison, 7, &mut lanes, true));
        // Stuck comparator forces one whole lane to the level.
        let mut lanes = mk();
        assert!(corrupt_bits(
            PlaneFault::StuckComparator { level: true },
            0,
            &mut lanes,
            false
        ));
        assert!(lanes[0].iter().all(|&b| b));
        // Stall and panic never touch data.
        let mut lanes = mk();
        assert!(!corrupt_bits(PlaneFault::WorkerStall, 1, &mut lanes, true));
        assert!(!corrupt_bits(PlaneFault::WorkerPanic, 1, &mut lanes, true));
        assert_eq!(lanes, mk());
        // Empty batches cannot be corrupted.
        assert!(!corrupt_bits(PlaneFault::LaneUpset, 1, &mut [], true));
        let mut empties = vec![Vec::new(), Vec::new()];
        assert!(!corrupt_bits(PlaneFault::LaneUpset, 1, &mut empties, true));
    }
}
