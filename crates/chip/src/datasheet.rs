//! The part's data sheet, assembled from the models.
//!
//! Everything a 1980 catalogue page would print about the chip —
//! organisation, clocking, throughput, package, cascade rules — pulled
//! from the timing and pin models so the page can never drift from the
//! design.

use crate::pins::{Package, PinBudget};
use crate::timing::ClockModel;
use std::fmt;

/// A generated data sheet for one chip configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSheet {
    /// Character cells per chip.
    pub cells: usize,
    /// Alphabet width in bits.
    pub bits: u32,
    /// Clock phase, ns.
    pub phase_ns: f64,
    /// Character period, ns.
    pub char_period_ns: f64,
    /// Sustained text rate, characters per second.
    pub chars_per_second: f64,
    /// Total pins.
    pub pins: usize,
    /// Smallest standard package, if any fits.
    pub package: Option<Package>,
}

impl DataSheet {
    /// Compiles the sheet for an `cells`-cell, `bits`-bit part using
    /// the prototype clock budget.
    pub fn compile(cells: usize, bits: u32) -> Self {
        let clock = ClockModel::prototype();
        let budget = PinBudget::new(bits);
        DataSheet {
            cells,
            bits,
            phase_ns: clock.beat_ns(),
            char_period_ns: clock.char_period_ns(),
            chars_per_second: clock.chars_per_second(),
            pins: budget.total_pins(),
            package: budget.smallest_package(),
        }
    }

    /// Maximum pattern length on a cascade of `chips` parts.
    pub fn cascade_capacity(&self, chips: usize) -> usize {
        self.cells * chips
    }
}

impl fmt::Display for DataSheet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SYSTOLIC PATTERN MATCHER — {} cells x {}-bit characters",
            self.cells, self.bits
        )?;
        writeln!(
            f,
            "  clock phase        : {:.0} ns (two-phase, non-overlapping)",
            self.phase_ns
        )?;
        writeln!(f, "  character period   : {:.0} ns", self.char_period_ns)?;
        writeln!(
            f,
            "  sustained rate     : {:.1} Mchar/s, independent of pattern length",
            self.chars_per_second / 1e6
        )?;
        writeln!(
            f,
            "  package            : {} pins ({})",
            self.pins,
            self.package
                .map(|p| p.to_string())
                .unwrap_or_else(|| "custom".into())
        )?;
        writeln!(
            f,
            "  cascade            : k parts match patterns up to {}k characters",
            self.cells
        )?;
        write!(
            f,
            "  pattern change     : on-line (recirculating pattern, no load phase)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_sheet() {
        let sheet = DataSheet::compile(8, 2);
        assert!((sheet.char_period_ns - 250.0).abs() < 5.0);
        assert_eq!(sheet.pins, 18);
        assert_eq!(sheet.package, Some(Package::Dip24));
        assert_eq!(sheet.cascade_capacity(5), 40);
    }

    #[test]
    fn display_has_the_headlines() {
        let text = DataSheet::compile(8, 2).to_string();
        assert!(text.contains("250 ns"), "{text}");
        assert!(text.contains("DIP-24"), "{text}");
        assert!(text.contains("on-line"), "{text}");
    }

    #[test]
    fn wide_alphabet_needs_custom_package_count() {
        let sheet = DataSheet::compile(4, 8);
        assert_eq!(sheet.pins, 42);
        assert_eq!(sheet.package, Some(Package::Dip64));
    }
}
