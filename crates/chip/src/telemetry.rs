//! Metrics built on the workspace trace-event taxonomy: counters,
//! fixed-bucket histograms and the two exporters CI consumes.
//!
//! `pm_systolic::telemetry` defines *what can be observed* (the
//! [`TraceEvent`] taxonomy and the [`TraceSink`] contract); this module
//! defines *what is kept*: [`MetricsRegistry`] is a sink that folds the
//! event stream into monotonic [`Counter`]s and fixed-bucket
//! [`Histogram`]s — the same shared-atomic discipline as
//! [`crate::counters`] — and snapshots into a [`TelemetrySnapshot`]
//! with two exporters:
//!
//! * [`TelemetrySnapshot::to_prometheus`] — Prometheus text exposition
//!   (`pm_*_total` counters, `_bucket{le=…}/_sum/_count` histograms),
//!   for scraping a long-running scheduler;
//! * [`TelemetrySnapshot::to_json`] — the `BENCH_telemetry.json`
//!   snapshot the E30 figure writes and the CI `bench-smoke` gate
//!   reads (hand-rolled: the workspace is offline and carries no serde).
//!
//! ```
//! use pm_chip::telemetry::MetricsRegistry;
//! use pm_systolic::telemetry::{TraceEvent, TraceSink};
//!
//! let metrics = MetricsRegistry::new();
//! metrics.record(TraceEvent::JobCompleted { job: 0, worker: 0, chars: 4096, matches: 3 });
//! let snap = metrics.snapshot();
//! assert_eq!(snap.jobs_completed, 1);
//! assert!(snap.to_prometheus().contains("pm_chars_total 4096"));
//! ```

use crate::counters::Counter;
use pm_systolic::telemetry::{TraceEvent, TraceSink};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default occupancy buckets: lane slots carried per batch (≤ 64 for
/// the `u64` engine, up to 512 for a width-8 superplane batch).
pub const OCCUPANCY_BOUNDS: &[u64] = &[1, 8, 16, 32, 64, 128, 256, 512];

/// Default batch-latency buckets, in microseconds.
pub const LATENCY_BOUNDS_MICROS: &[u64] = &[10, 50, 100, 500, 1_000, 5_000, 10_000];

/// A fixed-bucket histogram of `u64` observations, shared between
/// threads with the same relaxed-atomic discipline as
/// [`Counter`]: statistics, not synchronisation.
#[derive(Debug)]
pub struct Histogram {
    /// Inclusive upper bounds, ascending; one implicit +Inf bucket
    /// follows the last.
    bounds: Vec<u64>,
    /// One count per bound, plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram over the given ascending inclusive upper bounds.
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time reading of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds (the final +Inf bucket is implicit).
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Appends this histogram in Prometheus exposition format
    /// (cumulative `_bucket{le=…}` rows, then `_sum` and `_count`).
    fn to_prometheus(&self, name: &str, help: &str, out: &mut String) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for (bound, n) in self.bounds.iter().zip(&self.counts) {
            cum += n;
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cum}");
        }
        cum += self.counts.last().copied().unwrap_or(0);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
        let _ = writeln!(out, "{name}_sum {}", self.sum);
        let _ = writeln!(out, "{name}_count {}", self.count);
    }

    /// Appends this histogram as a JSON object.
    fn to_json(&self, out: &mut String) {
        out.push_str("{\"bounds\": [");
        for (i, b) in self.bounds.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("], \"counts\": [");
        for (i, n) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{n}");
        }
        let _ = write!(out, "], \"sum\": {}, \"count\": {}}}", self.sum, self.count);
    }
}

/// A [`TraceSink`] that folds the event stream into counters and
/// histograms. Share one behind an `Arc` (wrapped in a
/// [`SinkHandle`](pm_systolic::telemetry::SinkHandle)) across workers;
/// recording is a handful of relaxed atomic adds per event.
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Clock phases observed (2 per array beat).
    pub clock_phases: Counter,
    /// Text items injected into a beat-accurate array.
    pub texts_injected: Counter,
    /// Complete-window results that exited an array.
    pub comparator_fires: Counter,
    /// Matching lanes summed over comparator fires (= total matches on
    /// the beat-accurate path).
    pub match_lanes: Counter,
    /// Host watchdog stall declarations.
    pub host_stalls: Counter,
    /// Host retries after backoff.
    pub host_retries: Counter,
    /// Idle backoff beats summed over retries.
    pub backoff_beats: Counter,
    /// BIST scrubs that passed.
    pub scrubs_passed: Counter,
    /// BIST scrubs that failed.
    pub scrubs_failed: Counter,
    /// Array beats spent inside BIST programs.
    pub scrub_beats: Counter,
    /// Sockets condemned.
    pub condemned: Counter,
    /// Chain remaps performed.
    pub remaps: Counter,
    /// Characters replayed through healed chains.
    pub replayed_chars: Counter,
    /// Result-watermark commits.
    pub commits: Counter,
    /// Software-fallback engagements.
    pub fallbacks: Counter,
    /// Jobs handed to workers.
    pub jobs_started: Counter,
    /// Jobs whose results were recorded.
    pub jobs_completed: Counter,
    /// Text characters processed by completed jobs.
    pub chars: Counter,
    /// Matches found by completed jobs.
    pub matches: Counter,
    /// Word batches executed.
    pub batches: Counter,
    /// Engine steps summed over batches.
    pub batch_steps: Counter,
    /// Lane slots that carried a stream, summed over batches.
    pub lane_slots_used: Counter,
    /// Lane slots offered, summed over batches (64 per `u64` batch,
    /// `W × 64` per width-`W` superplane batch).
    pub lane_slots_total: Counter,
    /// Compiled-pattern cache hits.
    pub cache_hits: Counter,
    /// Compiled-pattern cache misses.
    pub cache_misses: Counter,
    /// Runs dispatched to the portable kernel.
    pub dispatch_portable: Counter,
    /// Runs dispatched to the AVX2 kernel.
    pub dispatch_avx2: Counter,
    /// Runs dispatched to the AVX-512 kernel.
    pub dispatch_avx512: Counter,
    /// Chaos-harness faults injected into scheduler workers.
    pub faults_injected: Counter,
    /// Sampled-lane scrubs whose lane disagreed with the scalar spec.
    pub scrub_mismatches: Counter,
    /// Scheduler workers quarantined (outputs voided, batches requeued).
    pub quarantined_workers: Counter,
    /// Degradation-ladder demotions (moves to a narrower rung).
    pub ladder_demotions: Counter,
    /// Degradation-ladder re-promotions after clean batches.
    pub ladder_promotions: Counter,
    /// Voided batches re-executed on a recovery rung.
    pub batches_retried: Counter,
    /// Patterns submitted to the dictionary compiler.
    pub dict_patterns: Counter,
    /// Patterns left resident after dictionary dedup (resident ÷
    /// submitted = dedup ratio).
    pub dict_resident_lanes: Counter,
    /// Superplane groups planned by the dictionary compiler.
    pub dict_groups: Counter,
    /// Lane slots across planned dictionary groups (resident ÷ slots =
    /// occupancy).
    pub dict_lane_slots: Counter,
    /// Front-door sessions admitted (`pm-serve`).
    pub sessions_opened: Counter,
    /// Front-door sessions closed normally.
    pub sessions_closed: Counter,
    /// Text characters streamed by closed sessions.
    pub session_chars: Counter,
    /// Admission-control rejections (session cap or byte budgets).
    pub sessions_rejected: Counter,
    /// Protocol frames received on front-door connections.
    pub frames: Counter,
    /// Payload bytes carried by received frames.
    pub frame_bytes: Counter,
    /// Match events delivered to front-door clients.
    pub events_delivered: Counter,
    /// Backpressure signals (SERVER_BUSY with a retry-after hint).
    pub backpressure_signals: Counter,
    /// Batches a worker stole from a sibling's deque.
    pub batch_steals: Counter,
    /// Routed batch runs completed by the shard router.
    pub router_runs: Counter,
    /// Jobs admitted through the shard router.
    pub router_jobs: Counter,
    /// Pattern groups the router planned.
    pub router_groups: Counter,
    /// Groups routed away from their affinity shard to balance load.
    pub router_affinity_moves: Counter,
    /// Microseconds the router spent grouping and assigning.
    pub router_micros: Counter,
    /// Jobs admitted to shards, summed over routing rounds.
    pub shard_jobs: Counter,
    /// High-water mark of jobs admitted to any one shard in a routing
    /// round — a gauge, not a counter.
    pub shard_queue_depth: AtomicU64,
    /// Superplane width (words) of the most recent dispatch — a gauge,
    /// not a counter.
    pub superplane_words: AtomicU64,
    /// Current degradation-ladder rung as a superplane width in words
    /// (0 = software fallback) — a gauge, not a counter.
    pub ladder_words: AtomicU64,
    /// Lanes-per-batch distribution.
    pub batch_occupancy: Histogram,
    /// Batch wall-clock distribution, microseconds (only batches the
    /// caller timed; untimed batches observe nothing).
    pub batch_micros: Histogram,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A fresh registry with the default bucket bounds.
    pub fn new() -> Self {
        MetricsRegistry {
            clock_phases: Counter::new(),
            texts_injected: Counter::new(),
            comparator_fires: Counter::new(),
            match_lanes: Counter::new(),
            host_stalls: Counter::new(),
            host_retries: Counter::new(),
            backoff_beats: Counter::new(),
            scrubs_passed: Counter::new(),
            scrubs_failed: Counter::new(),
            scrub_beats: Counter::new(),
            condemned: Counter::new(),
            remaps: Counter::new(),
            replayed_chars: Counter::new(),
            commits: Counter::new(),
            fallbacks: Counter::new(),
            jobs_started: Counter::new(),
            jobs_completed: Counter::new(),
            chars: Counter::new(),
            matches: Counter::new(),
            batches: Counter::new(),
            batch_steps: Counter::new(),
            lane_slots_used: Counter::new(),
            lane_slots_total: Counter::new(),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            dispatch_portable: Counter::new(),
            dispatch_avx2: Counter::new(),
            dispatch_avx512: Counter::new(),
            faults_injected: Counter::new(),
            scrub_mismatches: Counter::new(),
            quarantined_workers: Counter::new(),
            ladder_demotions: Counter::new(),
            ladder_promotions: Counter::new(),
            batches_retried: Counter::new(),
            dict_patterns: Counter::new(),
            dict_resident_lanes: Counter::new(),
            dict_groups: Counter::new(),
            dict_lane_slots: Counter::new(),
            sessions_opened: Counter::new(),
            sessions_closed: Counter::new(),
            session_chars: Counter::new(),
            sessions_rejected: Counter::new(),
            frames: Counter::new(),
            frame_bytes: Counter::new(),
            events_delivered: Counter::new(),
            backpressure_signals: Counter::new(),
            batch_steals: Counter::new(),
            router_runs: Counter::new(),
            router_jobs: Counter::new(),
            router_groups: Counter::new(),
            router_affinity_moves: Counter::new(),
            router_micros: Counter::new(),
            shard_jobs: Counter::new(),
            shard_queue_depth: AtomicU64::new(0),
            superplane_words: AtomicU64::new(0),
            ladder_words: AtomicU64::new(0),
            batch_occupancy: Histogram::new(OCCUPANCY_BOUNDS),
            batch_micros: Histogram::new(LATENCY_BOUNDS_MICROS),
        }
    }

    /// Folds the current counts into an exportable snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            clock_phases: self.clock_phases.get(),
            beats: self.clock_phases.get() / 2,
            texts_injected: self.texts_injected.get(),
            comparator_fires: self.comparator_fires.get(),
            match_lanes: self.match_lanes.get(),
            host_stalls: self.host_stalls.get(),
            host_retries: self.host_retries.get(),
            backoff_beats: self.backoff_beats.get(),
            scrubs_passed: self.scrubs_passed.get(),
            scrubs_failed: self.scrubs_failed.get(),
            scrub_beats: self.scrub_beats.get(),
            condemned: self.condemned.get(),
            remaps: self.remaps.get(),
            replayed_chars: self.replayed_chars.get(),
            commits: self.commits.get(),
            fallbacks: self.fallbacks.get(),
            jobs_started: self.jobs_started.get(),
            jobs_completed: self.jobs_completed.get(),
            chars: self.chars.get(),
            matches: self.matches.get(),
            batches: self.batches.get(),
            batch_steps: self.batch_steps.get(),
            lane_slots_used: self.lane_slots_used.get(),
            lane_slots_total: self.lane_slots_total.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            dispatch_portable: self.dispatch_portable.get(),
            dispatch_avx2: self.dispatch_avx2.get(),
            dispatch_avx512: self.dispatch_avx512.get(),
            faults_injected: self.faults_injected.get(),
            scrub_mismatches: self.scrub_mismatches.get(),
            quarantined_workers: self.quarantined_workers.get(),
            ladder_demotions: self.ladder_demotions.get(),
            ladder_promotions: self.ladder_promotions.get(),
            batches_retried: self.batches_retried.get(),
            dict_patterns: self.dict_patterns.get(),
            dict_resident_lanes: self.dict_resident_lanes.get(),
            dict_groups: self.dict_groups.get(),
            dict_lane_slots: self.dict_lane_slots.get(),
            sessions_opened: self.sessions_opened.get(),
            sessions_closed: self.sessions_closed.get(),
            session_chars: self.session_chars.get(),
            sessions_rejected: self.sessions_rejected.get(),
            frames: self.frames.get(),
            frame_bytes: self.frame_bytes.get(),
            events_delivered: self.events_delivered.get(),
            backpressure_signals: self.backpressure_signals.get(),
            batch_steals: self.batch_steals.get(),
            router_runs: self.router_runs.get(),
            router_jobs: self.router_jobs.get(),
            router_groups: self.router_groups.get(),
            router_affinity_moves: self.router_affinity_moves.get(),
            router_micros: self.router_micros.get(),
            shard_jobs: self.shard_jobs.get(),
            shard_queue_depth: self.shard_queue_depth.load(Ordering::Relaxed),
            superplane_words: self.superplane_words.load(Ordering::Relaxed),
            ladder_words: self.ladder_words.load(Ordering::Relaxed),
            batch_occupancy: self.batch_occupancy.snapshot(),
            batch_micros: self.batch_micros.snapshot(),
        }
    }
}

impl TraceSink for MetricsRegistry {
    fn record(&self, event: TraceEvent) {
        match event {
            TraceEvent::Clock { .. } => self.clock_phases.add(1),
            TraceEvent::TextInjected { .. } => self.texts_injected.add(1),
            TraceEvent::ComparatorFire { lanes, .. } => {
                self.comparator_fires.add(1);
                self.match_lanes.add(u64::from(lanes));
            }
            TraceEvent::HostStall { .. } => self.host_stalls.add(1),
            TraceEvent::HostRetry { backoff_beats, .. } => {
                self.host_retries.add(1);
                self.backoff_beats.add(backoff_beats);
            }
            TraceEvent::ScrubOutcome { passed, beats, .. } => {
                if passed {
                    self.scrubs_passed.add(1);
                } else {
                    self.scrubs_failed.add(1);
                }
                self.scrub_beats.add(beats);
            }
            TraceEvent::Condemned { .. } => self.condemned.add(1),
            TraceEvent::Remapped { replayed_chars, .. } => {
                self.remaps.add(1);
                self.replayed_chars.add(replayed_chars);
            }
            TraceEvent::Committed { .. } => self.commits.add(1),
            TraceEvent::FallbackEngaged => self.fallbacks.add(1),
            TraceEvent::JobStarted { .. } => self.jobs_started.add(1),
            TraceEvent::JobCompleted { chars, matches, .. } => {
                self.jobs_completed.add(1);
                self.chars.add(chars);
                self.matches.add(matches);
            }
            TraceEvent::BatchExecuted {
                lanes,
                slots,
                steps,
                micros,
                ..
            } => {
                self.batches.add(1);
                self.batch_steps.add(steps);
                self.lane_slots_used.add(u64::from(lanes));
                self.lane_slots_total.add(u64::from(slots));
                self.batch_occupancy.observe(u64::from(lanes));
                if micros > 0 {
                    self.batch_micros.observe(micros);
                }
            }
            TraceEvent::CacheLookup { hit } => {
                if hit {
                    self.cache_hits.add(1);
                } else {
                    self.cache_misses.add(1);
                }
            }
            TraceEvent::FaultInjected { .. } => self.faults_injected.add(1),
            TraceEvent::ScrubMismatch { .. } => self.scrub_mismatches.add(1),
            TraceEvent::WorkerQuarantined { .. } => self.quarantined_workers.add(1),
            TraceEvent::LadderMoved { words, down } => {
                if down {
                    self.ladder_demotions.add(1);
                } else {
                    self.ladder_promotions.add(1);
                }
                self.ladder_words.store(u64::from(words), Ordering::Relaxed);
            }
            TraceEvent::BatchRetried { .. } => self.batches_retried.add(1),
            TraceEvent::DictionaryPlanned {
                patterns,
                resident,
                groups,
                lane_slots,
            } => {
                self.dict_patterns.add(patterns);
                self.dict_resident_lanes.add(resident);
                self.dict_groups.add(u64::from(groups));
                self.dict_lane_slots.add(lane_slots);
            }
            TraceEvent::SessionOpened { .. } => self.sessions_opened.add(1),
            TraceEvent::SessionClosed { chars, .. } => {
                self.sessions_closed.add(1);
                self.session_chars.add(chars);
            }
            TraceEvent::SessionRejected { .. } => self.sessions_rejected.add(1),
            TraceEvent::FrameReceived { bytes, .. } => {
                self.frames.add(1);
                self.frame_bytes.add(bytes);
            }
            TraceEvent::EventsDelivered { events, .. } => self.events_delivered.add(events),
            TraceEvent::BackpressureSignalled { .. } => self.backpressure_signals.add(1),
            TraceEvent::BatchStolen { .. } => self.batch_steals.add(1),
            TraceEvent::RouterPlanned {
                jobs,
                groups,
                moves,
                micros,
                ..
            } => {
                self.router_runs.add(1);
                self.router_jobs.add(jobs);
                self.router_groups.add(groups);
                self.router_affinity_moves.add(moves);
                self.router_micros.add(micros);
            }
            TraceEvent::ShardAdmitted { jobs, depth, .. } => {
                self.shard_jobs.add(jobs);
                self.shard_queue_depth.fetch_max(depth, Ordering::Relaxed);
            }
            TraceEvent::DispatchSelected { words, level } => {
                use pm_systolic::superplane::SimdLevel;
                match level {
                    SimdLevel::Portable => self.dispatch_portable.add(1),
                    SimdLevel::Avx2 => self.dispatch_avx2.add(1),
                    SimdLevel::Avx512 => self.dispatch_avx512.add(1),
                }
                self.superplane_words
                    .store(u64::from(words), Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

/// One row of the counter table: `(metric name, help text, value)`.
type CounterRow<'a> = (&'a str, &'a str, u64);

/// A point-in-time reading of a [`MetricsRegistry`], ready to export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Clock phases observed.
    pub clock_phases: u64,
    /// Array beats (clock phases ÷ 2).
    pub beats: u64,
    /// Text items injected.
    pub texts_injected: u64,
    /// Complete-window results exited.
    pub comparator_fires: u64,
    /// Matching lanes summed over fires.
    pub match_lanes: u64,
    /// Host stalls declared.
    pub host_stalls: u64,
    /// Host retries after backoff.
    pub host_retries: u64,
    /// Backoff beats summed over retries.
    pub backoff_beats: u64,
    /// BIST scrubs passed.
    pub scrubs_passed: u64,
    /// BIST scrubs failed.
    pub scrubs_failed: u64,
    /// Beats spent in BIST programs.
    pub scrub_beats: u64,
    /// Sockets condemned.
    pub condemned: u64,
    /// Chain remaps.
    pub remaps: u64,
    /// Characters replayed through healed chains.
    pub replayed_chars: u64,
    /// Watermark commits.
    pub commits: u64,
    /// Fallback engagements.
    pub fallbacks: u64,
    /// Jobs started.
    pub jobs_started: u64,
    /// Jobs completed.
    pub jobs_completed: u64,
    /// Characters processed.
    pub chars: u64,
    /// Matches found.
    pub matches: u64,
    /// Word batches executed.
    pub batches: u64,
    /// Engine steps summed over batches.
    pub batch_steps: u64,
    /// Lane slots carrying a stream.
    pub lane_slots_used: u64,
    /// Lane slots available.
    pub lane_slots_total: u64,
    /// Pattern-cache hits.
    pub cache_hits: u64,
    /// Pattern-cache misses.
    pub cache_misses: u64,
    /// Runs dispatched to the portable kernel.
    pub dispatch_portable: u64,
    /// Runs dispatched to the AVX2 kernel.
    pub dispatch_avx2: u64,
    /// Runs dispatched to the AVX-512 kernel.
    pub dispatch_avx512: u64,
    /// Chaos-harness faults injected.
    pub faults_injected: u64,
    /// Sampled-lane scrub mismatches.
    pub scrub_mismatches: u64,
    /// Workers quarantined.
    pub quarantined_workers: u64,
    /// Ladder demotions.
    pub ladder_demotions: u64,
    /// Ladder re-promotions.
    pub ladder_promotions: u64,
    /// Batches retried on a recovery rung.
    pub batches_retried: u64,
    /// Patterns submitted to the dictionary compiler.
    pub dict_patterns: u64,
    /// Patterns resident after dictionary dedup.
    pub dict_resident_lanes: u64,
    /// Dictionary superplane groups planned.
    pub dict_groups: u64,
    /// Lane slots across planned dictionary groups.
    pub dict_lane_slots: u64,
    /// Front-door sessions admitted.
    pub sessions_opened: u64,
    /// Front-door sessions closed normally.
    pub sessions_closed: u64,
    /// Characters streamed by closed sessions.
    pub session_chars: u64,
    /// Admission-control rejections.
    pub sessions_rejected: u64,
    /// Protocol frames received.
    pub frames: u64,
    /// Payload bytes carried by received frames.
    pub frame_bytes: u64,
    /// Match events delivered to clients.
    pub events_delivered: u64,
    /// Backpressure signals sent.
    pub backpressure_signals: u64,
    /// Batches stolen across worker deques.
    pub batch_steals: u64,
    /// Routed batch runs completed.
    pub router_runs: u64,
    /// Jobs admitted through the router.
    pub router_jobs: u64,
    /// Pattern groups the router planned.
    pub router_groups: u64,
    /// Groups moved off their affinity shard for load.
    pub router_affinity_moves: u64,
    /// Microseconds spent routing.
    pub router_micros: u64,
    /// Jobs admitted to shards.
    pub shard_jobs: u64,
    /// High-water mark of jobs on any one shard per round.
    pub shard_queue_depth: u64,
    /// Superplane width (words) of the most recent dispatch.
    pub superplane_words: u64,
    /// Current ladder rung in words (0 = software fallback).
    pub ladder_words: u64,
    /// Lanes-per-batch distribution.
    pub batch_occupancy: HistogramSnapshot,
    /// Batch latency distribution (µs).
    pub batch_micros: HistogramSnapshot,
}

impl TelemetrySnapshot {
    /// The counter table driving both exporters, so they cannot drift.
    fn counter_rows(&self) -> Vec<CounterRow<'_>> {
        vec![
            (
                "pm_clock_phases_total",
                "Clock phases observed (2 per array beat).",
                self.clock_phases,
            ),
            ("pm_beats_total", "Array beats executed.", self.beats),
            (
                "pm_texts_injected_total",
                "Text items injected into beat-accurate arrays.",
                self.texts_injected,
            ),
            (
                "pm_comparator_fires_total",
                "Complete-window results exited from arrays.",
                self.comparator_fires,
            ),
            (
                "pm_match_lanes_total",
                "Matching lanes summed over comparator fires.",
                self.match_lanes,
            ),
            (
                "pm_host_stalls_total",
                "Host watchdog stall declarations.",
                self.host_stalls,
            ),
            (
                "pm_host_retries_total",
                "Host retries after backoff.",
                self.host_retries,
            ),
            (
                "pm_backoff_beats_total",
                "Idle backoff beats summed over retries.",
                self.backoff_beats,
            ),
            (
                "pm_scrubs_passed_total",
                "BIST scrubs that passed.",
                self.scrubs_passed,
            ),
            (
                "pm_scrubs_failed_total",
                "BIST scrubs that failed.",
                self.scrubs_failed,
            ),
            (
                "pm_scrub_beats_total",
                "Array beats spent inside BIST programs.",
                self.scrub_beats,
            ),
            ("pm_condemned_total", "Sockets condemned.", self.condemned),
            ("pm_remaps_total", "Chain remaps performed.", self.remaps),
            (
                "pm_replayed_chars_total",
                "Characters replayed through healed chains.",
                self.replayed_chars,
            ),
            (
                "pm_commits_total",
                "Result-watermark commits.",
                self.commits,
            ),
            (
                "pm_fallbacks_total",
                "Software-fallback engagements.",
                self.fallbacks,
            ),
            (
                "pm_jobs_started_total",
                "Jobs handed to workers.",
                self.jobs_started,
            ),
            (
                "pm_jobs_completed_total",
                "Jobs whose results were recorded.",
                self.jobs_completed,
            ),
            ("pm_chars_total", "Text characters processed.", self.chars),
            ("pm_matches_total", "Matches found.", self.matches),
            ("pm_batches_total", "Word batches executed.", self.batches),
            (
                "pm_batch_steps_total",
                "Engine steps summed over batches.",
                self.batch_steps,
            ),
            (
                "pm_lane_slots_used_total",
                "Lane slots that carried a stream.",
                self.lane_slots_used,
            ),
            (
                "pm_lane_slots_total",
                "Lane slots offered (64 per u64 batch, W*64 per superplane batch).",
                self.lane_slots_total,
            ),
            (
                "pm_cache_hits_total",
                "Compiled-pattern cache hits.",
                self.cache_hits,
            ),
            (
                "pm_cache_misses_total",
                "Compiled-pattern cache misses.",
                self.cache_misses,
            ),
            (
                "pm_dispatch_portable_total",
                "Runs dispatched to the portable superplane kernel.",
                self.dispatch_portable,
            ),
            (
                "pm_dispatch_avx2_total",
                "Runs dispatched to the AVX2 superplane kernel.",
                self.dispatch_avx2,
            ),
            (
                "pm_dispatch_avx512_total",
                "Runs dispatched to the AVX-512 superplane kernel.",
                self.dispatch_avx512,
            ),
            (
                "pm_faults_injected_total",
                "Chaos-harness faults injected into scheduler workers.",
                self.faults_injected,
            ),
            (
                "pm_scrub_mismatches_total",
                "Sampled-lane scrubs that disagreed with the scalar spec.",
                self.scrub_mismatches,
            ),
            (
                "pm_quarantined_workers_total",
                "Scheduler workers quarantined.",
                self.quarantined_workers,
            ),
            (
                "pm_ladder_demotions_total",
                "Degradation-ladder demotions.",
                self.ladder_demotions,
            ),
            (
                "pm_ladder_promotions_total",
                "Degradation-ladder re-promotions.",
                self.ladder_promotions,
            ),
            (
                "pm_batches_retried_total",
                "Voided batches re-executed on a recovery rung.",
                self.batches_retried,
            ),
            (
                "pm_dict_patterns_total",
                "Patterns submitted to the dictionary compiler.",
                self.dict_patterns,
            ),
            (
                "pm_dict_resident_lanes_total",
                "Patterns resident after dictionary dedup (÷ submitted = dedup ratio).",
                self.dict_resident_lanes,
            ),
            (
                "pm_dict_groups_total",
                "Superplane groups planned by the dictionary compiler.",
                self.dict_groups,
            ),
            (
                "pm_dict_lane_slots_total",
                "Lane slots across planned dictionary groups (resident ÷ slots = occupancy).",
                self.dict_lane_slots,
            ),
            (
                "pm_sessions_opened_total",
                "Front-door sessions admitted by pm-serve.",
                self.sessions_opened,
            ),
            (
                "pm_sessions_closed_total",
                "Front-door sessions closed normally.",
                self.sessions_closed,
            ),
            (
                "pm_session_chars_total",
                "Text characters streamed by closed sessions.",
                self.session_chars,
            ),
            (
                "pm_sessions_rejected_total",
                "Admission-control rejections (session cap or byte budgets).",
                self.sessions_rejected,
            ),
            (
                "pm_frames_total",
                "Protocol frames received on front-door connections.",
                self.frames,
            ),
            (
                "pm_frame_bytes_total",
                "Payload bytes carried by received frames.",
                self.frame_bytes,
            ),
            (
                "pm_events_delivered_total",
                "Match events delivered to front-door clients.",
                self.events_delivered,
            ),
            (
                "pm_backpressure_signals_total",
                "SERVER_BUSY backpressure signals with a retry-after hint.",
                self.backpressure_signals,
            ),
            (
                "pm_batch_steals_total",
                "Batches a worker stole from a sibling's deque.",
                self.batch_steals,
            ),
            (
                "pm_router_runs_total",
                "Routed batch runs completed by the shard router.",
                self.router_runs,
            ),
            (
                "pm_router_jobs_total",
                "Jobs admitted through the shard router.",
                self.router_jobs,
            ),
            (
                "pm_router_groups_total",
                "Pattern groups the router planned.",
                self.router_groups,
            ),
            (
                "pm_router_affinity_moves_total",
                "Groups routed away from their affinity shard to balance load.",
                self.router_affinity_moves,
            ),
            (
                "pm_router_micros_total",
                "Microseconds the router spent grouping and assigning.",
                self.router_micros,
            ),
            (
                "pm_shard_jobs_total",
                "Jobs admitted to shards, summed over routing rounds.",
                self.shard_jobs,
            ),
        ]
    }

    /// Renders the snapshot in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, help, value) in self.counter_rows() {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        let _ = writeln!(
            out,
            "# HELP pm_superplane_words Superplane width (words) of the most recent dispatch."
        );
        let _ = writeln!(out, "# TYPE pm_superplane_words gauge");
        let _ = writeln!(out, "pm_superplane_words {}", self.superplane_words);
        let _ = writeln!(
            out,
            "# HELP pm_ladder_words Current degradation-ladder rung in words (0 = software)."
        );
        let _ = writeln!(out, "# TYPE pm_ladder_words gauge");
        let _ = writeln!(out, "pm_ladder_words {}", self.ladder_words);
        let _ = writeln!(
            out,
            "# HELP pm_shard_queue_depth High-water mark of jobs admitted to any one shard per routing round."
        );
        let _ = writeln!(out, "# TYPE pm_shard_queue_depth gauge");
        let _ = writeln!(out, "pm_shard_queue_depth {}", self.shard_queue_depth);
        self.batch_occupancy.to_prometheus(
            "pm_batch_occupancy",
            "Lane slots carried per word batch.",
            &mut out,
        );
        self.batch_micros.to_prometheus(
            "pm_batch_micros",
            "Word-batch wall clock, microseconds.",
            &mut out,
        );
        out
    }

    /// Renders the snapshot as the `BENCH_telemetry.json` document:
    /// `chars_per_sec` at top level (what the CI gate reads), then
    /// every counter and histogram.
    pub fn to_json(&self, chars_per_sec: f64) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"chars_per_sec\": {chars_per_sec:.1},");
        out.push_str("  \"counters\": {\n");
        let rows = self.counter_rows();
        for (name, _, value) in rows.iter() {
            let _ = writeln!(out, "    \"{name}\": {value},");
        }
        let _ = writeln!(
            out,
            "    \"pm_shard_queue_depth\": {},",
            self.shard_queue_depth
        );
        let _ = writeln!(out, "    \"pm_ladder_words\": {},", self.ladder_words);
        let _ = writeln!(
            out,
            "    \"pm_superplane_words\": {}",
            self.superplane_words
        );
        out.push_str("  },\n");
        out.push_str("  \"histograms\": {\n    \"pm_batch_occupancy\": ");
        self.batch_occupancy.to_json(&mut out);
        out.push_str(",\n    \"pm_batch_micros\": ");
        self.batch_micros.to_json(&mut out);
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let h = Histogram::new(&[10, 100]);
        h.observe(5);
        h.observe(10); // inclusive upper bound
        h.observe(70);
        h.observe(1000); // overflow
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 1]);
        assert_eq!(s.sum, 1085);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn registry_folds_events() {
        let m = MetricsRegistry::new();
        m.record(TraceEvent::Clock {
            beat: 0,
            phase: pm_systolic::telemetry::ClockPhase::Phi1,
        });
        m.record(TraceEvent::Clock {
            beat: 0,
            phase: pm_systolic::telemetry::ClockPhase::Phi2,
        });
        m.record(TraceEvent::ComparatorFire {
            beat: 5,
            seq: 2,
            lanes: 7,
        });
        m.record(TraceEvent::JobCompleted {
            job: 1,
            worker: 0,
            chars: 100,
            matches: 4,
        });
        m.record(TraceEvent::BatchExecuted {
            worker: 0,
            lanes: 48,
            slots: 64,
            steps: 4096,
            micros: 120,
        });
        m.record(TraceEvent::DispatchSelected {
            words: 8,
            level: pm_systolic::superplane::SimdLevel::Portable,
        });
        m.record(TraceEvent::CacheLookup { hit: true });
        m.record(TraceEvent::CacheLookup { hit: false });
        m.record(TraceEvent::ScrubOutcome {
            socket: 2,
            passed: false,
            beats: 30,
        });
        let s = m.snapshot();
        assert_eq!(s.beats, 1);
        assert_eq!(s.match_lanes, 7);
        assert_eq!(s.chars, 100);
        assert_eq!(s.matches, 4);
        assert_eq!(s.lane_slots_used, 48);
        assert_eq!(s.lane_slots_total, 64);
        assert_eq!(s.dispatch_portable, 1);
        assert_eq!(s.superplane_words, 8);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.scrubs_failed, 1);
        assert_eq!(s.scrub_beats, 30);
        assert_eq!(s.batch_occupancy.count, 1);
        assert_eq!(s.batch_micros.sum, 120);
    }

    #[test]
    fn registry_folds_fault_and_ladder_events() {
        let m = MetricsRegistry::new();
        m.record(TraceEvent::FaultInjected {
            worker: 1,
            label: "lane_upset",
        });
        m.record(TraceEvent::ScrubMismatch {
            worker: 1,
            batch: 3,
        });
        m.record(TraceEvent::WorkerQuarantined {
            worker: 1,
            label: "lane_upset",
        });
        m.record(TraceEvent::LadderMoved {
            words: 4,
            down: true,
        });
        m.record(TraceEvent::LadderMoved {
            words: 8,
            down: false,
        });
        m.record(TraceEvent::BatchRetried {
            batch: 3,
            attempt: 1,
            words: 4,
        });
        let s = m.snapshot();
        assert_eq!(s.faults_injected, 1);
        assert_eq!(s.scrub_mismatches, 1);
        assert_eq!(s.quarantined_workers, 1);
        assert_eq!(s.ladder_demotions, 1);
        assert_eq!(s.ladder_promotions, 1);
        assert_eq!(s.batches_retried, 1);
        assert_eq!(s.ladder_words, 8); // last move wins the gauge
        let prom = s.to_prometheus();
        assert!(prom.contains("pm_quarantined_workers_total 1"), "{prom}");
        assert!(prom.contains("pm_ladder_words 8"), "{prom}");
        let json = s.to_json(0.0);
        assert!(json.contains("\"pm_scrub_mismatches_total\": 1"), "{json}");
        assert!(json.contains("\"pm_ladder_words\": 8"), "{json}");
        assert!(!json.contains(",\n  }"), "{json}");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let m = MetricsRegistry::new();
        m.record(TraceEvent::BatchExecuted {
            worker: 0,
            lanes: 64,
            slots: 512,
            steps: 100,
            micros: 0, // untimed: no latency observation
        });
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("# TYPE pm_batches_total counter"), "{text}");
        assert!(text.contains("pm_batches_total 1"), "{text}");
        assert!(
            text.contains("pm_batch_occupancy_bucket{le=\"64\"} 1"),
            "{text}"
        );
        assert!(text.contains("pm_batch_occupancy_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("pm_batch_micros_count 0"), "{text}");
    }

    #[test]
    fn json_snapshot_shape() {
        let m = MetricsRegistry::new();
        m.record(TraceEvent::JobCompleted {
            job: 0,
            worker: 0,
            chars: 42,
            matches: 1,
        });
        let json = m.snapshot().to_json(123456.7);
        assert!(json.contains("\"chars_per_sec\": 123456.7"), "{json}");
        assert!(json.contains("\"pm_chars_total\": 42"), "{json}");
        assert!(json.contains("\"pm_batch_occupancy\""), "{json}");
        // Crude but deliberate: balanced braces, no trailing commas.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(!json.contains(",\n  }"), "{json}");
    }
}
