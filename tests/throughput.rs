//! End-to-end throughput path: many (pattern, text) jobs through the
//! threaded scheduler, checked job-for-job against both the executable
//! specification and the scalar beat-accurate array — the same
//! golden-testing discipline the single-stream engines follow.

use systolic_pm::chip::throughput::{Job, ThroughputEngine};
use systolic_pm::systolic::batch::{BatchMatcher, LANES};
use systolic_pm::systolic::prelude::*;

/// A deterministic mixed workload: three patterns (one with wild
/// cards), 130 texts of assorted lengths — two full 64-lane words plus
/// a ragged tail, so word-boundary chunking is on the e2e path.
fn jobs() -> Vec<Job> {
    let patterns = [
        Pattern::parse("AXC").unwrap(),
        Pattern::parse("ABCA").unwrap(),
        Pattern::parse("BD").unwrap(),
    ];
    (0..130u64)
        .map(|id| {
            let len = (id as usize * 7) % 41;
            let text: Vec<Symbol> = (0..len)
                .map(|i| Symbol::new(((id as usize + i * 3) % 4) as u8))
                .collect();
            Job::new(id, patterns[id as usize % patterns.len()].clone(), text)
        })
        .collect()
}

#[test]
fn scheduler_agrees_with_spec_and_scalar_array() {
    let jobs = jobs();
    assert!(jobs.len() > 2 * LANES && !jobs.len().is_multiple_of(LANES));

    let engine = ThroughputEngine::new(4, 8);
    let report = engine.run(&jobs).unwrap();
    assert_eq!(report.outputs.len(), jobs.len());

    for (job, out) in jobs.iter().zip(&report.outputs) {
        assert_eq!(out.id, job.id);
        let spec = match_spec(&job.text, &job.pattern);
        assert_eq!(out.hits.bits(), spec, "job {} disagrees with spec", job.id);

        let mut scalar = SystolicMatcher::new(&job.pattern).unwrap();
        assert_eq!(
            scalar.match_symbols(&job.text).bits(),
            spec,
            "job {} disagrees with the scalar array",
            job.id
        );
    }

    // Global planning packs each distinct pattern into as few batches
    // as possible, so a single run compiles each pattern once; a second
    // run finds everything in the engine's persistent pattern index.
    assert!(report.totals.cache_misses <= 3);
    let again = engine.run(&jobs).unwrap();
    assert_eq!(again.totals.cache_misses, 0);
    assert!(again.totals.cache_hits > 0);
    assert_eq!(report.workers.len(), engine.workers());
}

#[test]
fn scheduler_agrees_with_spec_at_every_superplane_width() {
    use systolic_pm::chip::throughput::SuperWidth;
    let jobs = jobs();
    for width in [SuperWidth::W1, SuperWidth::W4, SuperWidth::W8] {
        let mut engine = ThroughputEngine::new(3, 8);
        engine.set_width(width);
        let report = engine.run(&jobs).unwrap();
        assert_eq!(report.lanes_per_batch, width.lanes());
        for (job, out) in jobs.iter().zip(&report.outputs) {
            assert_eq!(
                out.hits.bits(),
                match_spec(&job.text, &job.pattern),
                "job {} disagrees with spec at width {width}",
                job.id
            );
        }
    }
}

#[test]
fn batch_matcher_agrees_across_the_word_boundary() {
    let jobs = jobs();
    let pattern = &jobs[0].pattern;
    let texts: Vec<&[Symbol]> = jobs.iter().map(|j| j.text.as_slice()).collect();
    let hits = BatchMatcher::new(pattern).match_streams(&texts).unwrap();
    for (job, h) in jobs.iter().zip(&hits) {
        assert_eq!(h.bits(), match_spec(&job.text, pattern));
    }
}
