//! Machine-checked versions of the headline claims in EXPERIMENTS.md,
//! so the table can never drift from the code.

use systolic_pm::chip::timing::ClockModel;
use systolic_pm::chip::wafer::yield_curve;
use systolic_pm::design::figure41::figure_4_1;
use systolic_pm::layout::drc::DesignRules;
use systolic_pm::layout::floorplan::ChipFloorplan;
use systolic_pm::matchers::comm::CommunicationProfile;
use systolic_pm::matchers::prelude::*;
use systolic_pm::systolic::prelude::*;

#[test]
fn e8_one_character_every_250_ns() {
    let clock = ClockModel::prototype();
    assert!((clock.char_period_ns() - 250.0).abs() < 5.0);
    // Rate is independent of pattern length (cells only affect fill).
    let r1 = clock.effective_rate(1_000_000, 1);
    let r512 = clock.effective_rate(1_000_000, 512);
    assert!((r1 - r512).abs() / r1 < 0.01);
}

#[test]
fn e14_structural_costs_favour_the_systolic_design() {
    let n = 64;
    let sys = CommunicationProfile::systolic(n);
    let bc = CommunicationProfile::broadcast(n);
    let uni = CommunicationProfile::unidirectional(n);
    assert_eq!(sys.max_fanout, 1);
    assert_eq!(bc.max_fanout, n);
    assert_eq!(sys.loading_beats, 0);
    assert!(bc.loading_beats > 0 && uni.loading_beats > 0);
    assert!(sys.on_line_pattern_change);
    assert!(!bc.on_line_pattern_change && !uni.on_line_pattern_change);
    // The broadcast driver's burden grows with the array; the systolic
    // cells' stays constant — §3.3.1's power/speed objection.
    assert_eq!(
        CommunicationProfile::systolic(1024).max_fanout,
        sys.max_fanout
    );
    assert!(CommunicationProfile::broadcast(1024).max_fanout > bc.max_fanout);
}

#[test]
fn e15_wildcards_break_the_fast_sequential_algorithms() {
    let pattern = Pattern::parse("AXB").unwrap();
    assert!(matches!(
        KmpMatcher.find(&[], &pattern),
        Err(MatchError::WildcardsUnsupported { .. })
    ));
    assert!(matches!(
        BoyerMooreMatcher.find(&[], &pattern),
        Err(MatchError::WildcardsUnsupported { .. })
    ));
    // While the systolic array and the FFT method accept them.
    assert!(SystolicAlgorithm.find(&[], &pattern).is_ok());
    assert!(FischerPatersonMatcher.find(&[], &pattern).is_ok());
}

#[test]
fn e16_two_man_months_dominated_by_the_algorithm() {
    let (g, _) = figure_4_1();
    assert!((g.total_days() - 42.0).abs() < 1e-9);
    let (path, days) = g.critical_path().unwrap();
    assert_eq!(path.len(), 9, "every task is on the critical path");
    assert!((days - 42.0).abs() < 1e-9);
}

#[test]
fn e17_area_grows_linearly_and_drc_clean() {
    let areas: Vec<i64> = [8usize, 16, 24]
        .iter()
        .map(|&c| ChipFloorplan::new(c, 2).area())
        .collect();
    assert_eq!(areas[1] - areas[0], areas[2] - areas[1]);
    assert!(ChipFloorplan::new(8, 2)
        .drc(&DesignRules::default())
        .is_empty());
}

#[test]
fn e19_harvesting_beats_monolithic_yield() {
    let points = yield_curve(8, 32, &[0.02], 2, 30, 99);
    assert!(points[0].monolithic_yield < 0.2);
    assert!(points[0].harvested_fraction > 0.9);
}

#[test]
fn e1_figure_3_1_verbatim() {
    let pattern = Pattern::parse("AXC").unwrap();
    let mut m = SystolicMatcher::new(&pattern).unwrap();
    let hits = m.match_letters("ABCAACC").unwrap();
    assert_eq!(hits.ending_positions(), vec![2, 5, 6]);
}
