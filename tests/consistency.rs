//! Cross-crate consistency: independent models of the same artifact
//! must report the same structural numbers — device counts, pin
//! budgets, timing — because they describe one chip.

use systolic_pm::chip::pins::PinBudget;
use systolic_pm::chip::timing::ClockModel;
use systolic_pm::layout::cell::{accumulator_cell, comparator_cell};
use systolic_pm::layout::floorplan::ChipFloorplan;
use systolic_pm::layout::sticks::positive_comparator_sticks;
use systolic_pm::nmos::cells::{AccumulatorCell, ComparatorCell};

#[test]
fn comparator_device_count_is_consistent_everywhere() {
    // Netlist, stick diagram and synthesised layout all describe the
    // same 15-device cell of Plate 1 / Figure 3-6.
    let netlist = ComparatorCell::new(false).device_count();
    let sticks = positive_comparator_sticks().device_count();
    let layout = comparator_cell().device_count();
    assert_eq!(netlist, 15);
    assert_eq!(sticks, netlist);
    assert_eq!(layout, netlist);
}

#[test]
fn accumulator_device_count_matches_layout() {
    let netlist = AccumulatorCell::new(false, false).device_count();
    let layout = accumulator_cell().device_count();
    assert_eq!(layout, netlist, "layout generator must track the netlist");
}

#[test]
fn floorplan_pads_match_pin_budget() {
    for bits in [1u32, 2, 4, 8] {
        let budget = PinBudget::new(bits).total_pins();
        let plan = ChipFloorplan::new(8, bits);
        assert_eq!(plan.pads(), budget, "bits={bits}");
    }
}

#[test]
fn prototype_netlist_fits_the_multiproject_budget() {
    // The whole 8×2 prototype: hundreds of devices — consistent with a
    // 1979 multi-project chip slot, and linear per column.
    let chip = systolic_pm::nmos::chip::PatternChip::new(8, 2);
    let per_column = {
        let c9 = systolic_pm::nmos::chip::PatternChip::new(9, 2).device_count();
        c9 - chip.device_count()
    };
    // 2 comparators (15) + 1 accumulator (~35) + wiring straps.
    assert!(
        (60..=75).contains(&per_column),
        "per-column devices: {per_column}"
    );
}

#[test]
fn timing_model_matches_the_paper() {
    let clock = ClockModel::prototype();
    assert!((clock.char_period_ns() - 250.0).abs() < 5.0);
    // 1 Mbyte/s ≈ a fast 1979 minicomputer memory; the chip beats it.
    assert!(clock.chars_per_second() > 1.0e6);
}
