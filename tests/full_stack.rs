//! Cross-crate integration: the same workload must give identical
//! answers at every level of the abstraction hierarchy the paper walks
//! through — specification, character-level array, bit-serial array,
//! transistor-level chip, multi-chip cascade, multi-pass system, and
//! every software algorithm that accepts the input.

use systolic_pm::chip::cascade::ChipCascade;
use systolic_pm::chip::multipass::MultipassMatcher;
use systolic_pm::matchers::prelude::*;
use systolic_pm::nmos::prelude::PatternChip;
use systolic_pm::systolic::prelude::*;

fn workload() -> (Pattern, Vec<Symbol>) {
    let pattern = Pattern::parse("AXCAABXA").unwrap();
    let letters = "ABCAABCAABCDABCAABCABBCAAXCAABDA".replace('X', "C");
    let text = pm_systolic::symbol::text_from_letters(&letters).unwrap();
    (pattern, text)
}

#[test]
fn every_level_of_the_hierarchy_agrees() {
    let (pattern, text) = workload();
    let spec = match_spec(&text, &pattern);

    // Character-level behavioural array (Figure 3-3).
    let mut char_level = SystolicMatcher::new(&pattern).unwrap();
    assert_eq!(
        char_level.match_symbols(&text).bits(),
        spec,
        "char-level array"
    );

    // Bit-serial array (Figure 3-4).
    let bit_serial = BitSerialMatcher::new(&pattern).unwrap();
    assert_eq!(
        bit_serial.match_symbols(&text).bits(),
        spec,
        "bit-serial array"
    );

    // Transistor-level chip (Plate 2).
    let chip = PatternChip::new(pattern.len(), pattern.alphabet().bits());
    assert_eq!(
        chip.match_pattern(&pattern, &text).unwrap(),
        spec,
        "switch-level chip"
    );

    // Multi-chip cascade (Figure 3-7).
    let mut cascade = ChipCascade::new(&pattern, 4, 2).unwrap();
    assert_eq!(cascade.match_symbols(&text).bits(), spec, "cascade");

    // Multi-pass on an undersized system (§3.4).
    let multipass = MultipassMatcher::new(&pattern, 3).unwrap();
    assert_eq!(multipass.match_symbols(&text).bits(), spec, "multi-pass");

    // Every software algorithm that accepts wild cards.
    for m in all_matchers() {
        match m.find(&text, &pattern) {
            Ok(bits) => assert_eq!(bits, spec, "algorithm {}", m.name()),
            Err(MatchError::WildcardsUnsupported { .. }) => {
                assert!(!m.supports_wildcards(), "{} refused wrongly", m.name());
            }
            Err(e) => panic!("{}: {e}", m.name()),
        }
    }
}

#[test]
fn streaming_and_batch_agree() {
    let (pattern, text) = workload();
    let mut batch = SystolicMatcher::new(&pattern).unwrap();
    let expected = batch.match_symbols(&text);

    // The on-line interface: one character per bus cycle.
    let mut driver = pm_systolic::engine::Driver::new(
        pm_systolic::semantics::BooleanMatch,
        pattern.symbols().to_vec(),
        &[pattern.len()],
    )
    .unwrap();
    let mut got = vec![false; text.len()];
    for &ch in &text {
        for (seq, v) in driver.feed(ch) {
            if seq as usize >= pattern.k() {
                got[seq as usize] = v;
            }
        }
    }
    for (seq, v) in driver.drain() {
        if (seq as usize) >= pattern.k() && (seq as usize) < got.len() {
            got[seq as usize] = v;
        }
    }
    assert_eq!(got.as_slice(), expected.bits());
}
