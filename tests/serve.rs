//! End-to-end serving tests over real loopback TCP: concurrent
//! clients, interleaved chunked feeds, and the admission-control /
//! backpressure recovery path — all through the facade crate's
//! `serve` re-export, the way an embedding application would reach it.

use std::time::{Duration, Instant};
use systolic_pm::chip::dictionary::PatternDictionary;
use systolic_pm::serve::client::ClientError;
use systolic_pm::serve::prelude::*;
use systolic_pm::systolic::symbol::{Alphabet, Pattern, Symbol};

/// The shared test dictionary: two literals and a wildcard pattern.
const PATTERNS: &[(&[u8], Option<u8>)] = &[(b"abc", None), (b"needle", None), (b"x?z", Some(b'?'))];

/// A deterministic pseudo-random text over a small alphabet that the
/// patterns actually occur in, with one explicit "needle" plant.
fn text_for(session: usize) -> Vec<u8> {
    const POOL: &[u8] = b"abcnedlxz";
    let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (session as u64).wrapping_mul(0x2545_f491);
    let mut text: Vec<u8> = (0..470)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            POOL[(state % POOL.len() as u64) as usize]
        })
        .collect();
    let at = 100 + session % 200;
    text[at..at + 6].copy_from_slice(b"needle");
    text
}

/// Offline ground truth: `find_all` on the whole stream at once.
fn oracle_events(text: &[u8]) -> Vec<Match> {
    let patterns: Vec<Pattern> = PATTERNS
        .iter()
        .map(|(bytes, wild)| Pattern::from_bytes(bytes, *wild, Alphabet::EIGHT_BIT).unwrap())
        .collect();
    let matcher = PatternDictionary::new(&patterns, Default::default()).matcher();
    let symbols: Vec<Symbol> = text.iter().map(|&b| Symbol::new(b)).collect();
    matcher
        .find_all(&symbols)
        .iter()
        .map(|m| Match {
            pattern: m.pattern as u32,
            end: m.end as u64,
        })
        .collect()
}

#[test]
fn concurrent_clients_interleaved_chunks_equal_offline_oracle() {
    let server = MatchServer::start(ServeConfig::default()).unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..8)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = MatchClient::connect(addr).unwrap();
                for (bytes, wild) in PATTERNS {
                    client.add_pattern(bytes, *wild).unwrap();
                }
                // Four sessions per connection, fed round-robin so all
                // are mid-stream at once; ragged chunk sizes make the
                // cross-chunk carry path do real work (the longest
                // pattern is 6 bytes, the smallest chunk is 7).
                let sessions: Vec<(u64, Vec<u8>)> = (0..4)
                    .map(|s| (client.open_session().unwrap(), text_for(c * 4 + s)))
                    .collect();
                let chunk_sizes = [7usize, 19, 33, 64];
                let mut cursors = vec![0usize; sessions.len()];
                let mut got: Vec<Vec<Match>> = vec![Vec::new(); sessions.len()];
                let mut round = 0usize;
                loop {
                    let mut any = false;
                    for (i, (id, text)) in sessions.iter().enumerate() {
                        if cursors[i] >= text.len() {
                            continue;
                        }
                        any = true;
                        let take = chunk_sizes[(round + i) % chunk_sizes.len()]
                            .min(text.len() - cursors[i]);
                        let chunk = &text[cursors[i]..cursors[i] + take];
                        let (events, consumed) = client.feed(*id, chunk).unwrap();
                        cursors[i] += take;
                        assert_eq!(consumed, cursors[i] as u64, "consumed tracks the stream");
                        got[i].extend(events);
                    }
                    if !any {
                        break;
                    }
                    round += 1;
                }
                for (i, (id, text)) in sessions.iter().enumerate() {
                    let (chars, delivered) = client.close_session(*id).unwrap();
                    assert_eq!(chars, text.len() as u64);
                    assert_eq!(delivered, got[i].len() as u64);
                    assert_eq!(
                        got[i],
                        oracle_events(text),
                        "session {i} of client {c} diverged from the offline oracle"
                    );
                    assert!(!got[i].is_empty(), "the planted needle must be reported");
                }
                client.bye().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(server.open_sessions(), 0, "all sessions returned");
    server.shutdown();
}

#[test]
fn admission_control_rejects_then_recovers_after_backpressure() {
    let server = MatchServer::start(ServeConfig {
        max_sessions: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    let mut holder = MatchClient::connect(addr).unwrap();
    let held = holder.open_session().unwrap();

    // A second session is turned away with a positive retry hint.
    let mut late = MatchClient::connect(addr).unwrap();
    match late.open_session() {
        Err(ClientError::Busy {
            reason: BusyReason::Sessions,
            retry_after_ms,
        }) => assert!(retry_after_ms >= 1, "the hint must be actionable"),
        other => panic!("expected SERVER_BUSY, got {other:?}"),
    }

    // The late client retries with the server's pacing while the
    // holder finishes; the retry must eventually be admitted.
    let waiter = std::thread::spawn(move || {
        let id = late
            .open_session_with_retry(200)
            .expect("recover after backpressure");
        late.close_session(id).unwrap();
        late.bye().unwrap();
    });
    std::thread::sleep(Duration::from_millis(30));
    holder.close_session(held).unwrap();
    holder.bye().unwrap();
    waiter.join().unwrap();
    server.shutdown();
}

#[test]
fn oversized_chunk_is_a_hard_error_but_the_session_survives() {
    let server = MatchServer::start(ServeConfig {
        session_budget_bytes: 16,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = MatchClient::connect(server.local_addr()).unwrap();
    client.add_pattern(b"abc", None).unwrap();
    let id = client.open_session().unwrap();
    match client.feed(id, &[b'a'; 64]) {
        Err(ClientError::Server {
            code: ErrorCode::ChunkTooLarge,
            ..
        }) => {}
        other => panic!("expected ChunkTooLarge, got {other:?}"),
    }
    // The rejected chunk was not consumed; a budget-sized chunk works.
    let (events, consumed) = client.feed(id, b"xxabcxxx").unwrap();
    assert_eq!(consumed, 8);
    assert_eq!(events, vec![Match { pattern: 0, end: 4 }]);
    client.close_session(id).unwrap();
    client.bye().unwrap();
    server.shutdown();
}

#[test]
fn metrics_frame_reports_the_load() {
    let server = MatchServer::start(ServeConfig::default()).unwrap();
    let mut client = MatchClient::connect(server.local_addr()).unwrap();
    client.add_pattern(b"needle", None).unwrap();
    let id = client.open_session().unwrap();
    client.feed(id, b"one needle here").unwrap();
    client.close_session(id).unwrap();
    let metrics = client.metrics().unwrap();
    for needle in [
        "pm_sessions_opened_total 1",
        "pm_sessions_closed_total 1",
        "pm_session_chars_total 15",
        "pm_events_delivered_total 1",
        "pm_frames_total",
        "pm_frame_bytes_total",
    ] {
        assert!(
            metrics.contains(needle),
            "missing {needle:?} in:\n{metrics}"
        );
    }
    client.bye().unwrap();
    server.shutdown();
}

#[test]
fn hangup_without_close_returns_sessions_to_the_cap() {
    let server = MatchServer::start(ServeConfig {
        max_sessions: 1,
        idle_timeout_ms: 0, // watchdog off: hangup alone must recover
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    {
        let mut rude = MatchClient::connect(addr).unwrap();
        rude.open_session().unwrap();
        // Dropped here: TCP FIN without CLOSE or BYE.
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut polite = MatchClient::connect(addr).unwrap();
    let admitted = loop {
        match polite.open_session() {
            Ok(_) => break true,
            Err(ClientError::Busy { retry_after_ms, .. }) => {
                if Instant::now() > deadline {
                    break false;
                }
                std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms)));
            }
            Err(e) => panic!("unexpected {e:?}"),
        }
    };
    assert!(admitted, "the hung-up session was never reclaimed");
    server.shutdown();
}
