//! End-to-end self-healing: the Figure 3-7 five-chip cascade loses a
//! chip to a stuck-at fault mid-stream, detects it by scrubbing,
//! remaps onto a spare within its advertised beat bound, and the
//! committed match stream is bit-identical to a fault-free run — §5's
//! replacement argument closed as a running system.

use systolic_pm::chip::prelude::*;
use systolic_pm::systolic::prelude::*;
use systolic_pm::systolic::symbol::text_from_letters;

/// A 33-character pattern on 5×8 cells, as in Figure 3-7.
fn figure_3_7_pattern() -> Pattern {
    Pattern::parse("ABCDACBDABCDDCBAABCDACBDABCDDCBAB").unwrap()
}

fn long_text() -> Vec<Symbol> {
    let base = "ABCDACBDABCDDCBAABCDACBDABCDDCBABDAC";
    text_from_letters(&base.repeat(12)).unwrap()
}

fn policy() -> RecoveryPolicy {
    RecoveryPolicy {
        scrub_interval_chars: 64,
        ..RecoveryPolicy::default()
    }
}

#[test]
fn five_chip_cascade_heals_a_mid_stream_stuck_at_fault() {
    let pattern = figure_3_7_pattern();
    assert_eq!(pattern.len(), 33);
    let text = long_text();
    let golden = match_spec(&text, &pattern);

    let mut board = SelfHealingCascade::new(&pattern, 5, 8, 2, policy()).unwrap();
    assert_eq!(board.chain().len(), 5, "Figure 3-7 geometry");

    let mid = text.len() / 2;
    board.write_all(&text[..mid]).unwrap();
    let injected_at = board.beat();
    let bound = board.detection_bound_beats();
    board.inject_fault(2, ChipFault::ResultStuck(true));
    board.write_all(&text[mid..]).unwrap();
    let bits = board.finish().unwrap();

    // Correctness: committed stream equals the fault-free reference.
    assert_eq!(bits.bits(), golden);
    assert_eq!(board.mode(), Mode::Hardware, "healed, not degraded");

    // Detection within the advertised bound, chip condemned, chain
    // rewired around it onto a spare.
    let detected_at = board
        .log()
        .iter()
        .find_map(|e| match e {
            RecoveryEvent::BistFailed { beat, socket, .. } => Some((*beat, *socket)),
            _ => None,
        })
        .expect("the fault must be detected");
    assert_eq!(detected_at.1, 2, "the faulty socket fails self-test");
    assert!(
        detected_at.0 - injected_at <= bound,
        "detection latency {} beats exceeds bound {bound}",
        detected_at.0 - injected_at
    );
    assert!(board.is_condemned(2));
    assert_eq!(board.chain().len(), 5, "still five chips after remap");
    assert!(!board.chain().contains(&2), "condemned socket bypassed");
    assert_eq!(board.spares_remaining(), 1, "one spare consumed");
}

#[test]
fn spare_exhaustion_matches_software_fallback_exactly() {
    let pattern = figure_3_7_pattern();
    let text = long_text();

    let mut board = SelfHealingCascade::new(&pattern, 5, 8, 1, policy()).unwrap();
    let mid = text.len() / 2;
    board.write_all(&text[..mid]).unwrap();
    // Two failures against one spare: exhaustion is forced.
    board.inject_fault(1, ChipFault::TextStuck(0));
    board.inject_fault(3, ChipFault::ResultDead);
    board.write_all(&text[mid..]).unwrap();
    let bits = board.finish().unwrap();

    assert_eq!(board.mode(), Mode::Degraded);
    assert!(board
        .log()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::FallbackEngaged { .. })));

    // The committed stream equals both the spec and a direct run of the
    // software fallback the board degraded to.
    let fallback = systolic_pm::matchers::prelude::software_fallback(&pattern);
    assert_eq!(bits.bits(), fallback.find(&text, &pattern).unwrap());
    assert_eq!(bits.bits(), match_spec(&text, &pattern));
}

#[test]
fn resilient_host_bus_end_to_end_events_survive_a_fault() {
    let pattern = figure_3_7_pattern();
    let text = long_text();
    let golden = match_spec(&text, &pattern);
    let k = pattern.k();

    let mut bus = ResilientHostBus::new(5, 8, 2, policy());
    bus.load_pattern(&pattern).unwrap();
    let bytes: Vec<u8> = text.iter().map(|s| s.value()).collect();
    let mid = bytes.len() / 2;
    bus.write(&bytes[..mid]).unwrap();
    bus.cascade_mut()
        .unwrap()
        .inject_fault(4, ChipFault::PatternStuck(2));
    bus.write(&bytes[mid..]).unwrap();
    bus.flush().unwrap();
    assert_eq!(bus.state(), DeviceState::Streaming, "healed on hardware");

    let mut got = Vec::new();
    while let Some(e) = bus.read_event() {
        assert_eq!(e.end - e.start, k as u64);
        got.push(e.end as usize);
    }
    let expected: Vec<usize> = golden
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| i)
        .collect();
    assert!(!expected.is_empty(), "workload must contain matches");
    assert_eq!(got, expected, "verified events equal the reference");
}
