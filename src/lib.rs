//! # systolic-pm — facade crate
//!
//! Re-exports every subsystem of the Foster–Kung systolic
//! pattern-matching chip reproduction (ISCA 1980). See the individual
//! crates for detail: [`systolic`], [`matchers`], [`nmos`], [`chip`],
//! [`correlator`], [`layout`], [`design`] and [`serve`], and the repository's
//! `README.md` / `DESIGN.md` / `EXPERIMENTS.md` for the map.
//!
//! ```
//! use systolic_pm::systolic::prelude::*;
//!
//! # fn main() -> Result<(), Error> {
//! let pattern = Pattern::parse("AXC")?;
//! let mut matcher = SystolicMatcher::new(&pattern)?;
//! let hits = matcher.match_letters("ABCAACC")?;
//! assert_eq!(hits.ending_positions(), vec![2, 5, 6]); // Figure 3-1
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pm_chip as chip;
pub use pm_correlator as correlator;
pub use pm_design as design;
pub use pm_layout as layout;
pub use pm_matchers as matchers;
pub use pm_nmos as nmos;
pub use pm_serve as serve;
pub use pm_systolic as systolic;
