//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s whose length falls in `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
