//! The case loop: sample, run, report. No shrinking — failures carry
//! the case number and per-test seed, which reproduce the input.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    /// Underlying deterministic generator (vendored SplitMix64).
    pub rng: StdRng,
}

impl TestRng {
    /// Deterministic stream for one named test.
    pub fn for_test(name: &str, salt: u64) -> Self {
        // FNV-1a over the test name, salted by the case index, so each
        // test gets a distinct but fixed input stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }
}

/// Runner configuration. Only the fields this workspace touches.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected (`prop_assume!`/filter) cases tolerated.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; try another.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Result type of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives one property test to its configured case count.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

impl TestRunner {
    /// A runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        TestRunner { config, name }
    }

    /// Samples inputs from `strategy` and runs `case` until
    /// `config.cases` inputs pass.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case (reporting case number and
    /// message) or when rejects exceed the configured budget.
    pub fn run<S, F>(&mut self, strategy: &S, mut case: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut attempt = 0u64;
        while passed < self.config.cases {
            let mut rng = TestRng::for_test(self.name, attempt);
            let value = strategy.sample(&mut rng);
            match case(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= self.config.max_global_rejects,
                        "{}: too many rejected inputs ({} rejects for {} passes)",
                        self.name,
                        rejected,
                        passed
                    );
                }
                Err(TestCaseError::Fail(message)) => panic!(
                    "{}: property failed at case #{} (attempt {}, deterministic seed — rerun reproduces it)\n{}",
                    self.name, passed, attempt, message
                ),
            }
            attempt += 1;
        }
    }
}
