//! Sampling-only strategies: each strategy knows how to draw one value
//! from a [`TestRng`]. No shrinking.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second-stage strategy from each produced value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, resampling
    /// otherwise. `reason` labels the filter in exhaustion panics.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            f,
            reason,
        }
    }

    /// Keeps only values satisfying `f`, resampling otherwise.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Resampling attempts before a filter gives up.
const FILTER_ATTEMPTS: usize = 1000;

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_ATTEMPTS {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map {:?} rejected every sample", self.reason);
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_ATTEMPTS {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected every sample", self.reason);
    }
}

/// Weighted choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(
            arms.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs a positive weight"
        );
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.rng.gen_range(0u64..total);
        for (w, strategy) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strategy.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed correctly")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// String strategies written as regex literals (`text in ".{0,200}"`).
///
/// Only the subset this workspace uses is understood: `.{min,max}`
/// generates `min..=max` arbitrary printable-or-control characters.
/// Any other pattern is produced verbatim as a literal string.
impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
            let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
            let (min, max) = body.split_once(',')?;
            Some((min.trim().parse().ok()?, max.trim().parse().ok()?))
        }
        match parse_dot_repeat(self) {
            Some((min, max)) => {
                let len = rng.rng.gen_range(min..=max);
                (0..len)
                    .map(|_| {
                        // Mix of ASCII, control characters and a few
                        // multi-byte code points — enough garbage to
                        // exercise "never panics" parser properties.
                        match rng.rng.gen_range(0u8..8) {
                            0 => char::from(rng.rng.gen_range(0u8..32)),
                            1..=5 => char::from(rng.rng.gen_range(32u8..127)),
                            6 => '\u{00e9}',
                            _ => '\u{2603}',
                        }
                    })
                    .collect()
            }
            None => self.to_string(),
        }
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng.gen_bool(0.5)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The whole-domain strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
