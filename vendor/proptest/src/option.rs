//! `Option` strategies (`proptest::option::weighted`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy producing `Some(inner)` with probability `prob`, else `None`.
pub fn weighted<S: Strategy>(prob: f64, inner: S) -> Weighted<S> {
    assert!((0.0..=1.0).contains(&prob), "probability must be in [0, 1]");
    Weighted { prob, inner }
}

/// See [`weighted`].
#[derive(Debug, Clone)]
pub struct Weighted<S> {
    prob: f64,
    inner: S,
}

impl<S: Strategy> Strategy for Weighted<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.rng.gen_bool(self.prob) {
            Some(self.inner.sample(rng))
        } else {
            None
        }
    }
}
