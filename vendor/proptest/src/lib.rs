//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so this vendored
//! crate reimplements the API surface the tests rely on: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`/`prop_flat_map`/`prop_filter_map`,
//! range and tuple strategies, [`collection::vec`], [`option::weighted`],
//! `Just`, `any`, `prop_oneof!`, the `proptest!` macro with
//! `proptest_config`, and `prop_assert*`/`prop_assume!`.
//!
//! Semantics differ from real proptest in one deliberate way: inputs are
//! sampled from a per-test deterministic stream and failing cases are
//! **not shrunk** — the failure report carries the case number and seed
//! instead, which (with the fixed seed) is enough to reproduce.

#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// What the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    /// Module alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Weighted / unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Asserts inside a property body; failure reports the case instead of
/// unwinding through arbitrary code.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Discards the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// The property-test entry macro: turns each
/// `fn name(pat in strategy, …) { body }` into a `#[test]` that samples
/// and runs `cases` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __strategy = ($($strategy,)+);
            let mut __runner = $crate::test_runner::TestRunner::new(__config, stringify!($name));
            __runner.run(&__strategy, |__value| {
                let ($($pat,)+) = __value;
                $body
                #[allow(unreachable_code)]
                ::std::result::Result::Ok(())
            });
        }
    )*};
}
