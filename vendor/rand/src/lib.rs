//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`,
//! `Rng::gen_bool`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a deterministic, dependency-free implementation instead.
//! The generator is SplitMix64 — statistically fine for simulation
//! workloads and property-test inputs, **not** cryptographic. Streams
//! differ from the real `rand::StdRng` (ChaCha12), so seeds produce
//! different-but-still-deterministic sequences.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniformly distributed machine word.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction, matching the real crate's entry point.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps a `u64` to `[0, 1)` using the high 53 bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly from a range. The single
/// generic [`SampleRange`] impl over this trait is what lets integer
/// literal inference flow through `gen_range` exactly as with the real
/// crate.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[start, end)`.
    fn sample_half_open<R: RngCore>(start: Self, end: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[start, end]`.
    fn sample_inclusive<R: RngCore>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start < end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                let offset = rng.next_u64() % span;
                (start as u64).wrapping_add(offset) as $t
            }
            fn sample_inclusive<R: RngCore>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                let offset = rng.next_u64() % span;
                (start as u64).wrapping_add(offset) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(start: f64, end: f64, rng: &mut R) -> f64 {
        assert!(start < end, "cannot sample empty range");
        start + unit_f64(rng.next_u64()) * (end - start)
    }
    fn sample_inclusive<R: RngCore>(start: f64, end: f64, rng: &mut R) -> f64 {
        assert!(start <= end, "cannot sample empty range");
        start + unit_f64(rng.next_u64()) * (end - start)
    }
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = rng.gen_range(0u16..4);
            assert!(u < 4);
            let f = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((350..=650).contains(&hits), "about half: {hits}");
    }
}
