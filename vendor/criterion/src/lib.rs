//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access. This vendored crate
//! keeps the benches compiling and runnable: each benchmark times a
//! small fixed number of iterations and prints a per-iteration mean.
//! It does **no** statistical analysis — numbers are indicative only,
//! which matches how `EXPERIMENTS.md` treats debug timings.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Label for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Units for group throughput annotations (accepted, echoed, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean seconds per iteration, recorded by [`Bencher::iter`].
    mean: f64,
    iters: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration.
        black_box(routine());
        let iters = 5u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean = start.elapsed().as_secs_f64() / f64::from(iters);
        self.iters = iters;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stub ignores measurement time.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Records the work per iteration (echoed in output only).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        println!(
            "bench {}/{}: {:.3} µs/iter (stub timing, {} iters)",
            self.name,
            id.label,
            b.mean * 1e6,
            b.iters
        );
        self
    }

    /// Runs one benchmark parameterised by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b, input);
        println!(
            "bench {}/{}: {:.3} µs/iter (stub timing, {} iters)",
            self.name,
            id.label,
            b.mean * 1e6,
            b.iters
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Begins a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        println!(
            "bench {}: {:.3} µs/iter (stub timing, {} iters)",
            name,
            b.mean * 1e6,
            b.iters
        );
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
