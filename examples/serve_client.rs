//! A client session against the streaming match service (§5).
//!
//! The paper's closing opinion is that the hard part of special-purpose
//! hardware is the system around it. This example is the system's front
//! door in miniature: it starts an in-process [`MatchServer`] on
//! loopback, connects a [`MatchClient`], declares a small dictionary,
//! and streams a document in chunks — showing match events arriving
//! with global offsets even when a match straddles a chunk boundary,
//! and the `SERVER_BUSY` path a well-behaved client retries through.
//!
//! ```text
//! cargo run --example serve_client
//! ```

use systolic_pm::serve::client::ClientError;
use systolic_pm::serve::prelude::*;

const DOCUMENT: &[u8] = b"THE SYSTOLIC ARRAY MATCHES PATTERNS ON LINE: \
EVERY CHARACTER ENTERS ONCE, EVERY PATTERN SEES IT, AND THE MATCHES \
STREAM OUT AS THE TEXT STREAMS IN. PATTERN MATCHING AT WIRE SPEED.";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately tiny server: 2 sessions, so the busy path shows.
    let server = MatchServer::start(ServeConfig {
        max_sessions: 2,
        ..ServeConfig::default()
    })?;
    println!("server listening on {}", server.local_addr());

    let mut client = MatchClient::connect(server.local_addr())?;
    println!("handshake ok (max frame {} bytes)\n", client.max_frame());

    // --- 1. Declare the dictionary for this connection.
    let mut names = Vec::new();
    for (bytes, wild) in [
        (b"PATTERN".as_slice(), None),
        (b"MATCH".as_slice(), None),
        (b"STREAM? ".as_slice(), Some(b'?')), // STREAMS or STREAM + space
    ] {
        let id = client.add_pattern(bytes, wild)?;
        names.push(String::from_utf8_lossy(bytes).into_owned());
        println!("pattern {id}: {:?}", names.last().unwrap());
    }

    // --- 2. Stream the document in small chunks; offsets are global.
    let session = client.open_session()?;
    println!(
        "\nsession {session} open; feeding {} bytes in 17-byte chunks",
        DOCUMENT.len()
    );
    let mut total = 0u64;
    for chunk in DOCUMENT.chunks(17) {
        let (events, consumed) = client.feed_with_retry(session, chunk, 16)?;
        for e in events {
            println!(
                "  match: pattern {} ({}) ends at global offset {}",
                e.pattern, names[e.pattern as usize], e.end
            );
        }
        total = consumed;
    }
    let (chars, delivered) = client.close_session(session)?;
    println!("session closed: {chars} chars ({total} consumed), {delivered} events\n");

    // --- 3. Admission control: fill the cap, watch the busy answer.
    let a = client.open_session()?;
    let b = client.open_session()?;
    match client.open_session() {
        Err(ClientError::Busy {
            reason,
            retry_after_ms,
        }) => println!("third session refused: {reason:?}, retry after {retry_after_ms} ms"),
        other => println!("unexpected: {other:?}"),
    }
    client.close_session(a)?;
    client.close_session(b)?;

    // --- 4. The metrics frame is the Prometheus page over the wire.
    let metrics = client.metrics()?;
    let interesting = ["pm_sessions_opened_total", "pm_events_delivered_total"];
    println!("\nmetrics excerpt:");
    for line in metrics.lines() {
        if interesting.iter().any(|k| line.starts_with(k)) {
            println!("  {line}");
        }
    }

    client.bye()?;
    server.shutdown();
    Ok(())
}
