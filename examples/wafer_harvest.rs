//! Wafer-scale integration (§5): ship working matchers from a
//! defective wafer by reconnecting around the dead cells.
//!
//! ```text
//! cargo run --example wafer_harvest
//! ```

use systolic_pm::chip::wafer::{yield_curve, Wafer};
use systolic_pm::systolic::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fabricate a 16x64 wafer of character cells with 8% defects.
    let wafer = Wafer::fabricate(16, 64, 0.08, 0x51C0);
    let (rows, cols) = wafer.dims();
    println!(
        "wafer: {rows}x{cols} = {} cells, {} working after fabrication",
        wafer.cells(),
        wafer.working_cells()
    );

    // Show a corner of the defect map.
    println!("\ndefect map (top-left corner, x = dead):");
    for r in 0..8 {
        let row: String = (0..32)
            .map(|c| if wafer.is_defective(r, c) { 'x' } else { '.' })
            .collect();
        println!("  {row}");
    }

    // Harvest with increasing bypass wiring.
    println!("\nbypass wires | harvested cells | stranded");
    for bypass in 0..=3 {
        let h = wafer.harvest(bypass);
        println!("  {bypass:>10} | {:>15} | {:>8}", h.chain.len(), h.stranded);
    }

    // Run a real match on the harvested array.
    let pattern = Pattern::parse("ABXCBA")?;
    let mut matcher = wafer.matcher(&pattern, 2)?;
    println!(
        "\nharvested array of {} cells runs the matcher:",
        matcher.cells()
    );
    let text = pm_systolic::symbol::text_from_letters(&"ABACBAABBCBA".repeat(4))?;
    let hits = matcher.match_symbols(&text);
    println!(
        "  pattern {pattern} over {} chars: {} matches",
        text.len(),
        hits.count()
    );
    assert_eq!(hits.bits(), match_spec(&text, &pattern));
    println!("  equals specification: true");

    // The yield story.
    println!("\nyield vs defect rate (100 wafers each):");
    println!("  rate | monolithic | harvested fraction");
    for p in yield_curve(16, 64, &[0.01, 0.05, 0.10], 2, 100, 7) {
        println!(
            "  {:>3.0}% | {:>9.0}% | {:>18.0}%",
            100.0 * p.defect_rate,
            100.0 * p.monolithic_yield,
            100.0 * p.harvested_fraction
        );
    }
    println!("\n\"…a defective circuit is replaced by a functioning one on the same wafer.\"");
    Ok(())
}
