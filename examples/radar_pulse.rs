//! Pulse correlation and filtering — the §3.4 numeric extensions.
//!
//! "A problem of more practical interest is the computation of
//! correlations." A radar-style scenario: a known pulse shape buried in
//! a noisy return. The same systolic dataflow that matched strings now
//! (1) FIR-filters the return to knock down noise and (2) correlates
//! against the pulse template to find echo delays.
//!
//! ```text
//! cargo run --example radar_pulse
//! ```

use systolic_pm::correlator::prelude::*;

/// Deterministic pseudo-noise in [-amp, amp].
fn noise(len: usize, amp: i64, seed: u64) -> Vec<i64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % (2 * amp as u64 + 1)) as i64 - amp
        })
        .collect()
}

fn main() -> Result<(), pm_systolic::Error> {
    // The transmitted pulse: a 7-sample chirp-like template.
    let pulse = vec![10, 30, 60, 100, 60, 30, 10];
    let echoes = [120usize, 300, 431]; // true echo start positions
    let len = 600;

    // Build the received signal: echoes + noise.
    let mut rx = noise(len, 8, 0xBEEF);
    for &at in &echoes {
        for (i, &p) in pulse.iter().enumerate() {
            rx[at + i] += p;
        }
    }

    println!("pulse template : {pulse:?}");
    println!("true echoes at : {echoes:?}");

    // Stage 1: a smoothing FIR (moving average) on the systolic array.
    let mut smoother = FirFilter::new(vec![1, 1, 1, 1])?;
    let smoothed = smoother.filter(&rx);
    println!(
        "\nFIR smoother   : 4-tap moving sum over {} samples",
        smoothed.len()
    );

    // Stage 2: SSD correlation against the (scaled) template.
    let template: Vec<i64> = pulse.iter().map(|&p| 4 * p).collect();
    let mut correlator = SystolicCorrelator::new(template.clone())?;
    let ssd = correlator.correlate(&smoothed);

    // An echo shows up as a deep SSD minimum ending at start+len-1.
    let k = template.len() - 1;
    let mut scored: Vec<(usize, i64)> = ssd
        .iter()
        .enumerate()
        .skip(k)
        .map(|(i, &v)| (i, v))
        .collect();
    scored.sort_by_key(|&(_, v)| v);
    // Greedy peak picking: keep the best minima, suppressing anything
    // within one template length of an already-chosen echo.
    let mut picked: Vec<(usize, i64)> = Vec::new();
    for &(end, v) in &scored {
        if picked
            .iter()
            .all(|&(e, _)| e.abs_diff(end) > template.len())
        {
            picked.push((end, v));
            if picked.len() == 3 {
                break;
            }
        }
    }
    let mut found: Vec<usize> = picked
        .iter()
        .map(|&(end, _)| end - k) // window start in the smoothed signal
        .map(|s| s.saturating_sub(3)) // undo the FIR group delay
        .collect();
    found.sort_unstable();

    println!("SSD minima     : {picked:?}");
    println!("estimated echo starts: {found:?}");

    for &truth in &echoes {
        assert!(
            found.iter().any(|&f| f.abs_diff(truth) <= 2),
            "echo at {truth} not recovered (got {found:?})"
        );
    }
    println!("\nall echoes recovered within ±2 samples.");

    // Bonus: the convolution view of the same dataflow.
    let mut conv = SystolicConvolver::new(vec![1, -2, 1])?;
    let curvature = conv.convolve(&smoothed);
    assert_eq!(curvature, convolve_direct(&smoothed, &[1, -2, 1]));
    println!("second-difference convolution agrees with direct computation.");
    Ok(())
}
