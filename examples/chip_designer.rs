//! The whole Section-4 design flow, end to end.
//!
//! Walks the paper's task dependency graph (Figure 4-1) and actually
//! *performs* each station with the workspace's tools: algorithm →
//! circuit → sticks → layout → masks → silicon, finishing with a
//! transistor-level co-simulation of the resulting chip against its
//! own specification and the clock budget behind the 250 ns claim.
//!
//! ```text
//! cargo run --example chip_designer
//! ```

use systolic_pm::chip::datasheet::DataSheet;
use systolic_pm::chip::pins::PinBudget;
use systolic_pm::design::prelude::*;
use systolic_pm::layout::prelude::*;
use systolic_pm::nmos::prelude::*;
use systolic_pm::systolic::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------ the methodology
    let (graph, _) = figure_4_1();
    println!("Design plan (Figure 4-1):");
    for id in graph.topological_order()? {
        println!("  {:36} {:>3.0} days", graph.name(id), graph.days(id));
    }
    let (_, days) = graph.critical_path()?;
    println!("  critical path: {days:.0} designer-days (≈ two man-months)\n");

    // ------------------------------------------------ 1. algorithm
    let columns = 8;
    let bits = 2;
    println!("[Algorithm] {columns}-cell bidirectional array, {bits}-bit characters");
    let pattern = Pattern::parse("ABCAABCA")?;
    let text = text_from_letters_demo()?;
    let mut behavioural = SystolicMatcher::new(&pattern)?;
    let spec_bits = behavioural.match_symbols(&text);
    println!(
        "  behavioural matches end at {:?}",
        spec_bits.ending_positions()
    );

    // ------------------------------------------------ 2-5. circuits
    let mut comparator = ComparatorCell::new(false);
    println!(
        "\n[Cell Logic Circuits] comparator: {} devices",
        comparator.device_count()
    );
    let (p, s, d) = comparator.step(true, true, true)?;
    assert!(d && p && s);
    let acc = AccumulatorCell::new(false, false);
    println!(
        "[Cell Timing Signals] accumulator: {} devices, two-phase t register",
        acc.device_count()
    );

    // ------------------------------------------------ 6-7. sticks
    let sticks = positive_comparator_sticks();
    println!(
        "\n[Cell Sticks] Plate 1 topology: {} transistor sites, {} pullups",
        sticks.device_count(),
        sticks.pullup_sites().len()
    );

    // ------------------------------------------------ 8-9. layout
    let cell = systolic_pm::layout::cell::comparator_cell();
    println!(
        "\n[Cell Layouts] comparator cell {}x{} λ",
        cell.width(),
        cell.height()
    );
    let plan = ChipFloorplan::new(columns, bits);
    let violations = plan.drc(&DesignRules::default());
    println!(
        "[Cell Boundary Layouts] die {}x{} λ, {} pads, DRC violations: {}",
        plan.die().width(),
        plan.die().height(),
        plan.pads(),
        violations.len()
    );
    assert!(violations.is_empty());
    let cif = plan.to_cif();
    println!(
        "  CIF deck: {} bytes (first line: {:?})",
        cif.len(),
        cif.lines().next().unwrap()
    );
    let pins = PinBudget::new(bits);
    println!(
        "  package: {} pins → {}",
        pins.total_pins(),
        pins.smallest_package()
            .map(|p| p.to_string())
            .unwrap_or_default()
    );

    // ------------------------------------------------ fabrication
    let chip = PatternChip::new(columns, bits);
    println!(
        "\n[Fabrication] switch-level netlist: {} devices",
        chip.device_count()
    );
    let silicon = chip.match_pattern(&pattern, &text)?;
    println!(
        "  silicon vs behavioural: {}",
        if silicon == spec_bits.bits() {
            "IDENTICAL"
        } else {
            "MISMATCH"
        }
    );
    assert_eq!(silicon, spec_bits.bits());

    // ------------------------------------------------ the data sheet
    println!("\n{}", DataSheet::compile(columns, bits));
    Ok(())
}

/// 24 characters of demo text over the chip's alphabet.
fn text_from_letters_demo() -> Result<Vec<Symbol>, Error> {
    pm_systolic::symbol::text_from_letters("ABCAABCAABCDABCAABCABBCA")
}
