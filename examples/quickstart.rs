//! Quickstart: match a wild-card pattern against a text stream, the
//! Figure 3-1 workload of Foster & Kung (ISCA 1980).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use systolic_pm::systolic::prelude::*;

fn main() -> Result<(), Error> {
    // The paper's running example: AXC, where X matches anything.
    let pattern = Pattern::parse("AXC")?;
    let mut matcher = SystolicMatcher::new(&pattern)?;

    let text = "ABCAACCAB";
    let hits = matcher.match_letters(text)?;

    println!("pattern : {pattern}");
    println!("text    : {text}");
    print!("bits    : ");
    for i in 0..text.len() {
        print!("{}", u8::from(hits.bit(i)));
    }
    println!();
    println!("matches end at {:?}", hits.ending_positions());
    println!("matches start at {:?}", hits.starting_positions());

    // The same answer from the bit-serial array — the organisation the
    // chip was actually fabricated in (2-bit characters, Figure 3-4).
    let symbols = pm_systolic::symbol::text_from_letters(text)?;
    let bitwise = BitSerialMatcher::new(&pattern)?;
    assert_eq!(bitwise.match_symbols(&symbols).bits(), hits.bits());
    println!("bit-serial array agrees: true");

    // And from the executable specification.
    assert_eq!(match_spec(&symbols, &pattern), hits.bits());
    println!("specification agrees   : true");
    Ok(())
}
