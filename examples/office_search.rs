//! Full-text search for the "electronic file cabinet" (§3.1).
//!
//! The paper cites a proposal to use string-matching hardware in office
//! automation systems. This example plays that role: ASCII documents
//! (8-bit characters, so an 8-row bit-serial chip), a query with wild
//! cards, the chip mounted as a host peripheral ([`HostBus`]), and a
//! pattern longer than one card handled by §3.4's multi-pass protocol.
//!
//! ```text
//! cargo run --example office_search
//! ```

use systolic_pm::chip::host::HostBus;
use systolic_pm::chip::multipass::MultipassMatcher;
use systolic_pm::systolic::prelude::*;

const MEMO: &str = "TO ALL STAFF: THE PATTERN MATCHING MACHINE IN ROOM 101 \
IS NOW OPERATIONAL. PLEASE FILE MATCHING REQUESTS WITH THE OPERATOR. \
MATCHING TIME IS BILLED PER CHARACTER. THE MACHINE MATCHES ON LINE.";

/// An ASCII query where `?` matches any character.
fn query(q: &str) -> Pattern {
    Pattern::from_bytes(q.as_bytes(), Some(b'?'), Alphabet::EIGHT_BIT).expect("non-empty query")
}

fn show_hits(label: &str, memo: &str, starts: &[usize], len: usize) {
    println!("{label}: {} hit(s)", starts.len());
    for &s in starts {
        println!(
            "  …{}…",
            &memo[s.saturating_sub(8)..(s + len + 8).min(memo.len())]
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("document: {} ASCII characters\n", MEMO.len());

    // --- 1. The chip as a file-cabinet peripheral (Figure 1-1).
    let q1 = query("MATCH???");
    let mut bus = HostBus::new(q1.len());
    bus.load_pattern(&q1)?;
    bus.write(MEMO.as_bytes())?;
    bus.flush()?;
    let mut starts = Vec::new();
    while let Some(ev) = bus.read_event() {
        starts.push(ev.start as usize);
    }
    show_hits("query \"MATCH???\" via the host bus", MEMO, &starts, 8);

    // --- 2. A long query on a small card: multi-pass operation (§3.4).
    let q2 = query("PATTERN MATCHING");
    let card_cells = 8; // the prototype's size — half the query!
    let matcher = MultipassMatcher::new(&q2, card_cells)?;
    let text: Vec<Symbol> = MEMO.bytes().map(Symbol::new).collect();
    let hits = matcher.match_symbols(&text);
    let starts2 = hits.starting_positions();
    println!(
        "\nquery \"PATTERN MATCHING\" ({} chars) on an {}-cell card: {} passes",
        q2.len(),
        card_cells,
        matcher.passes_needed(text.len())
    );
    show_hits("multi-pass result", MEMO, &starts2, q2.len());

    // --- 3. Cross-check against the specification.
    assert_eq!(hits.bits(), match_spec(&text, &q2));
    let spec1 = match_spec(&text, &q1);
    let spec_starts: Vec<usize> = spec1
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| i + 1 - q1.len())
        .collect();
    assert_eq!(starts, spec_starts);
    println!("\nboth queries verified against the executable specification.");
    Ok(())
}
