//! DNA motif scanning on the pattern-matching chip.
//!
//! The prototype chip used two-bit characters — a four-symbol alphabet,
//! which happens to be exactly a nucleotide alphabet. This example maps
//! A/C/G/T onto the chip's Σ, plants a transcription-factor-like motif
//! with degenerate (wild card) positions into a synthetic genome, and
//! scans it three ways: the behavioural array, a five-chip cascade, and
//! the rejected broadcast architecture — all agreeing with the spec.
//!
//! ```text
//! cargo run --example dna_motif
//! ```

use systolic_pm::chip::cascade::ChipCascade;
use systolic_pm::systolic::prelude::*;

/// Maps a nucleotide string to chip symbols (A=0 C=1 G=2 T=3, N wild).
fn motif(s: &str) -> Pattern {
    let syms = s
        .chars()
        .map(|c| match c {
            'A' => PatSym::Lit(Symbol::new(0)),
            'C' => PatSym::Lit(Symbol::new(1)),
            'G' => PatSym::Lit(Symbol::new(2)),
            'T' => PatSym::Lit(Symbol::new(3)),
            'N' => PatSym::Wild,
            other => panic!("not a nucleotide: {other}"),
        })
        .collect();
    Pattern::new(syms, Alphabet::TWO_BIT).expect("non-empty motif")
}

fn genome(len: usize, seed: u64) -> Vec<Symbol> {
    // A simple deterministic xorshift so the example needs no deps.
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Symbol::new((state % 4) as u8)
        })
        .collect()
}

fn to_letters(g: &[Symbol]) -> String {
    g.iter()
        .map(|s| ['A', 'C', 'G', 'T'][s.value() as usize])
        .collect()
}

fn main() -> Result<(), Error> {
    // A TATA-box-like motif with two degenerate positions.
    let pattern = motif("TATANATN");
    let mut g = genome(4000, 0xDA7A);
    // Plant three copies.
    let planted = [500usize, 1776, 3333];
    for &at in &planted {
        for (i, p) in pattern.symbols().iter().enumerate() {
            if let Some(sym) = p.literal() {
                g[at + i] = sym;
            }
        }
    }

    println!("motif   : TATANATN ({} chars, 2 wild)", pattern.len());
    println!("genome  : {} nt, motif planted at {:?}", g.len(), planted);
    println!("context : …{}…", to_letters(&g[495..515]));

    // 1. The behavioural systolic array.
    let mut array = SystolicMatcher::new(&pattern)?;
    let hits = array.match_symbols(&g);
    println!(
        "\nsystolic array  : {} sites, starts {:?}",
        hits.count(),
        hits.starting_positions()
    );

    // 2. A five-chip cascade (Figure 3-7) with room to spare.
    let mut cascade = ChipCascade::new(&pattern, 5, 8)?;
    let cascade_hits = cascade.match_symbols(&g);
    println!(
        "5-chip cascade  : {} sites (agrees: {})",
        cascade_hits.count(),
        cascade_hits == hits
    );

    // 3. The broadcast machine the paper rejected — same answer, but
    //    count what the broadcast bus had to drive.
    let mut machine = systolic_pm::matchers::broadcast::BroadcastMachine::load(&pattern);
    let mut broadcast_sites = Vec::new();
    for (i, &s) in g.iter().enumerate() {
        if machine.broadcast(s) {
            broadcast_sites.push(i + 1 - pattern.len());
        }
    }
    println!(
        "broadcast machine: {} sites (agrees: {}); bus drive events: {} (fan-out cost, §3.3.1)",
        broadcast_sites.len(),
        broadcast_sites == hits.starting_positions(),
        machine.cell_drive_events()
    );

    // 4. The executable spec has the last word.
    assert_eq!(hits.bits(), match_spec(&g, &pattern));
    for &at in &planted {
        assert!(
            hits.starting_positions().contains(&at),
            "planted site {at} found"
        );
    }
    println!("\nall planted sites recovered; spec agrees.");
    Ok(())
}
